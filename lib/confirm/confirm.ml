module Emulator = Sanids_x86.Emulator
module Reg = Sanids_x86.Reg

type config = {
  max_steps : int;
  max_syscalls : int;
  min_written : int;
  arena_size : int;
}

let default_config =
  { max_steps = 20_000; max_syscalls = 16; min_written = 8; arena_size = 1 lsl 18 }

let validate_config c =
  if c.max_steps < 1 then Error "confirm: steps must be at least 1"
  else if c.max_steps > 10_000_000 then
    Error "confirm: steps above 10000000 defeats the bounded-execution point"
  else if c.max_syscalls < 1 then Error "confirm: syscalls must be at least 1"
  else if c.min_written < 1 then Error "confirm: written must be at least 1"
  else if c.arena_size < 8192 then
    Error "confirm: arena below 8192 leaves no room for code plus stack"
  else if c.arena_size > 1 lsl 24 then
    Error "confirm: arena above 16MiB is past any plausible payload"
  else Ok ()

let config_to_string c =
  Printf.sprintf "steps=%d,syscalls=%d,written=%d,arena=%d" c.max_steps
    c.max_syscalls c.min_written c.arena_size

let config_of_string s =
  let s = String.trim s in
  if s = "" then Error "confirm: empty spec (use \"default\" or KEY=N,...)"
  else if s = "default" then Ok default_config
  else
    let parse_field acc field =
      match acc with
      | Error _ as e -> e
      | Ok cfg -> (
          match String.index_opt field '=' with
          | None ->
              Error
                (Printf.sprintf
                   "confirm: %S is not KEY=N (keys: steps, syscalls, written, \
                    arena)"
                   field)
          | Some i -> (
              let key = String.trim (String.sub field 0 i) in
              let v =
                String.trim
                  (String.sub field (i + 1) (String.length field - i - 1))
              in
              match int_of_string_opt v with
              | None -> Error (Printf.sprintf "confirm: %s=%S is not a number" key v)
              | Some n -> (
                  match key with
                  | "steps" -> Ok { cfg with max_steps = n }
                  | "syscalls" -> Ok { cfg with max_syscalls = n }
                  | "written" -> Ok { cfg with min_written = n }
                  | "arena" -> Ok { cfg with arena_size = n }
                  | _ ->
                      Error
                        (Printf.sprintf
                           "confirm: unknown key %S (steps, syscalls, written, \
                            arena)"
                           key))))
    in
    match
      List.fold_left parse_field (Ok default_config)
        (String.split_on_char ',' s)
    with
    | Error _ as e -> e
    | Ok cfg -> (
        match validate_config cfg with Ok () -> Ok cfg | Error e -> Error e)

type reason = Budget | Fault of string

type outcome =
  | Confirmed_decrypt of { written : int; steps : int }
  | Confirmed_syscall of { nr : int; name : string; steps : int }
  | Refuted of string
  | Statically_refuted of string
  | Inconclusive of reason

let confirmed = function
  | Confirmed_decrypt _ | Confirmed_syscall _ -> true
  | Refuted _ | Statically_refuted _ | Inconclusive _ -> false

let label = function
  | Confirmed_decrypt _ -> "confirmed_decrypt"
  | Confirmed_syscall _ -> "confirmed_syscall"
  | Refuted _ -> "refuted"
  | Statically_refuted _ -> "static_refuted"
  | Inconclusive Budget -> "inconclusive_budget"
  | Inconclusive (Fault _) -> "inconclusive_fault"

let pp ppf = function
  | Confirmed_decrypt { written; steps } ->
      Format.fprintf ppf "confirmed: executed self-written bytes (%d written, %d steps)"
        written steps
  | Confirmed_syscall { nr; name; steps } ->
      Format.fprintf ppf "confirmed: reached %s (int 0x80 eax=%d, %d steps)" name
        nr steps
  | Refuted msg -> Format.fprintf ppf "refuted: %s" msg
  | Statically_refuted msg -> Format.fprintf ppf "statically refuted: %s" msg
  | Inconclusive Budget -> Format.fprintf ppf "inconclusive: step budget exhausted"
  | Inconclusive (Fault msg) -> Format.fprintf ppf "inconclusive: %s" msg

(* Linux int 0x80 numbers that close the case: a payload that execves or
   opens a socket has proven hostile intent.  socketcall subcalls 1..17
   cover socket/bind/connect/listen/accept/…; anything else through
   eax=102 is treated as a plain (faked) syscall. *)
let sys_execve = 11
let sys_socketcall = 102

let run ?(config = default_config) ~code ~entry () =
  let len = String.length code in
  if len = 0 then Inconclusive (Fault "empty code image")
  else if entry < 0 || entry >= len then
    Inconclusive (Fault (Printf.sprintf "entry 0x%x outside %d-byte image" entry len))
  else if len > config.arena_size - 4096 then
    Inconclusive
      (Fault
         (Printf.sprintf "image of %d bytes does not fit the %d-byte arena" len
            config.arena_size))
  else begin
    let emu = Emulator.create ~arena_size:config.arena_size ~code () in
    Emulator.set_eip emu (Int32.add Emulator.code_base (Int32.of_int entry));
    (* Track every byte the guest stores; seeding happened in [create],
       so from here on a set bit means the payload modified itself (or
       built code on its stack). *)
    let written = Bytes.make ((config.arena_size + 7) / 8) '\000' in
    let distinct = ref 0 in
    Emulator.set_write_hook emu
      (Some
         (fun addr ->
           let off = Int32.to_int (Int32.sub addr Emulator.code_base) in
           if off >= 0 && off < config.arena_size then begin
             let byte = off lsr 3 and bit = off land 7 in
             let prev = Char.code (Bytes.get written byte) in
             if prev land (1 lsl bit) = 0 then begin
               Bytes.set written byte (Char.chr (prev lor (1 lsl bit)));
               incr distinct
             end
           end));
    let executing_written () =
      let off =
        Int32.to_int (Int32.sub (Emulator.eip emu) Emulator.code_base)
      in
      off >= 0
      && off < config.arena_size
      && Char.code (Bytes.get written (off lsr 3)) land (1 lsl (off land 7)) <> 0
    in
    let rec loop steps syscalls =
      if !distinct >= config.min_written && executing_written () then
        Confirmed_decrypt { written = !distinct; steps }
      else if steps >= config.max_steps then Inconclusive Budget
      else
        match Emulator.step emu with
        | Emulator.Running -> loop (steps + 1) syscalls
        | Emulator.Halted msg -> Refuted msg
        | Emulator.Syscall 0x80 -> (
            let nr =
              Int32.to_int (Int32.logand (Emulator.reg emu Reg.EAX) 0xFFl)
            in
            if nr = sys_execve then
              Confirmed_syscall { nr; name = "execve"; steps = steps + 1 }
            else
              let socket_like =
                nr = sys_socketcall
                &&
                let sub = Emulator.reg emu Reg.EBX in
                Int32.compare sub 1l >= 0 && Int32.compare sub 17l <= 0
              in
              if socket_like then
                Confirmed_syscall { nr; name = "socketcall"; steps = steps + 1 }
              else if syscalls + 1 >= config.max_syscalls then
                Refuted
                  (Printf.sprintf
                     "%d syscalls without execve or socketcall" (syscalls + 1))
              else begin
                (* fake a kernel: plausible small success return *)
                Emulator.set_reg emu Reg.EAX 3l;
                loop (steps + 1) (syscalls + 1)
              end)
        | Emulator.Syscall n ->
            Refuted (Printf.sprintf "interrupt 0x%x is not a linux syscall" n)
    in
    loop 0 0
  end
