(** Static refutation: a sound abstract pre-stage for {!Confirm.run}.

    Before paying for concrete emulation, a matcher hit is executed
    {e abstractly} from its entry offset over the {!Sanids_ir.Absint.V}
    value domain, under the same step / syscall / written-byte budgets
    as the emulator.  The abstract executor mirrors
    {!Sanids_x86.Emulator.step} instruction by instruction; conditional
    branches whose outcome is unknown fork the path (bounded), memory is
    the exact payload image plus an overlay of abstractly-written bytes,
    and any loss of precision that could matter — an unknown jump
    target, a possibly-in-arena store at an unknown address, a syscall
    number that may be execve/socketcall, a path that could reach the
    confirmer's decrypt condition or outlive the step budget — aborts
    the analysis.

    The contract is {e must}-refutation: [run] returns [Some reason]
    only when every feasible concrete execution is proven to end in a
    refuting event (fault, undecodable byte, [int3], a non-Linux
    interrupt, or a burned syscall budget) within the budgets — i.e.
    when {!Confirm.run} with the same inputs is guaranteed to return
    [Refuted _].  It never turns a [Confirmed_*] or [Inconclusive _]
    run into a refutation; when in doubt it returns [None] and the hit
    goes to the emulator as before.  This property is enforced by a
    qcheck oracle against the validated emulator on random encodable
    instruction sequences, and by regression corpora: decoy payloads
    are statically refuted, true ADMmutate/Clet/staged decoders never
    are. *)

val run : ?config:Confirm.config -> code:string -> entry:int -> unit -> string option
(** [Some reason] when concrete confirmation must refute; [None] when
    the hit needs (or might need) the emulator.  Never raises. *)
