(* Minimal recursive-descent JSON reader — just enough for the emu-test
   vector corpus.  No external dependency: the toolchain ships no JSON
   library and the vectors only need objects, arrays, strings, integers,
   booleans and null. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Error of string

type state = { src : string; mutable pos : int; mutable line : int }

let fail st msg = raise (Error (Printf.sprintf "line %d: %s" st.line msg))
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st =
  (if st.pos < String.length st.src && st.src.[st.pos] = '\n' then
     st.line <- st.line + 1);
  st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> fail st (Printf.sprintf "expected '%c', found '%c'" c c')
  | None -> fail st (Printf.sprintf "expected '%c', found end of input" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' ->
        advance st;
        Buffer.contents buf
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> fail st "unterminated escape"
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | 'r' -> Buffer.add_char buf '\r'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                if st.pos + 4 > String.length st.src then
                  fail st "truncated \\u escape";
                let hex = String.sub st.src st.pos 4 in
                let code =
                  try int_of_string ("0x" ^ hex)
                  with _ -> fail st "bad \\u escape"
                in
                st.pos <- st.pos + 4;
                if code > 0xFF then fail st "\\u escape above 0xFF unsupported"
                else Buffer.add_char buf (Char.chr code)
            | c -> fail st (Printf.sprintf "bad escape '\\%c'" c));
            loop ())
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        loop ()
  in
  loop ()

let parse_int st =
  let start = st.pos in
  (match peek st with Some '-' -> advance st | _ -> ());
  (* accept 0x… so vectors can write addresses and flag words in hex *)
  (if
     st.pos + 1 < String.length st.src
     && st.src.[st.pos] = '0'
     && (st.src.[st.pos + 1] = 'x' || st.src.[st.pos + 1] = 'X')
   then begin
     advance st;
     advance st;
     let rec hex () =
       match peek st with
       | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') ->
           advance st;
           hex ()
       | _ -> ()
     in
     hex ()
   end
   else
     let rec digits () =
       match peek st with
       | Some '0' .. '9' ->
           advance st;
           digits ()
       | _ -> ()
     in
     digits ());
  let s = String.sub st.src start (st.pos - start) in
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail st (Printf.sprintf "bad number %S" s)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' -> parse_obj st
  | Some '[' -> parse_list st
  | Some '"' -> String (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> Int (parse_int st)
  | Some c -> fail st (Printf.sprintf "unexpected character '%c'" c)

and parse_obj st =
  expect st '{';
  skip_ws st;
  if peek st = Some '}' then begin
    advance st;
    Obj []
  end
  else
    let rec fields acc =
      skip_ws st;
      let key = parse_string st in
      skip_ws st;
      expect st ':';
      let v = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' ->
          advance st;
          fields ((key, v) :: acc)
      | Some '}' ->
          advance st;
          Obj (List.rev ((key, v) :: acc))
      | _ -> fail st "expected ',' or '}' in object"
    in
    fields []

and parse_list st =
  expect st '[';
  skip_ws st;
  if peek st = Some ']' then begin
    advance st;
    List []
  end
  else
    let rec items acc =
      let v = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' ->
          advance st;
          items (v :: acc)
      | Some ']' ->
          advance st;
          List (List.rev ((v :: acc)))
      | _ -> fail st "expected ',' or ']' in array"
    in
    items []

let of_string s =
  let st = { src = s; pos = 0; line = 1 } in
  match
    let v = parse_value st in
    skip_ws st;
    if st.pos <> String.length s then fail st "trailing garbage after value";
    v
  with
  | v -> Ok v
  | exception Error msg -> Error msg

(* accessors *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
let to_list_opt = function List l -> Some l | _ -> None
let to_obj_opt = function Obj f -> Some f | _ -> None
