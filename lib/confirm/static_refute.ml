(* A bounded abstract executor that mirrors Emulator.step over the
   Absint.V interval/congruence domain.  Everything here is written
   against one contract: return [Some _] only when the concrete
   [Confirm.run] with the same inputs must return [Refuted _].  Any
   imprecision that could possibly flip that verdict raises [Bail],
   which surfaces as [None] — the hit then pays for the emulator
   exactly as it did before this stage existed. *)

module Insn = Sanids_x86.Insn
module Reg = Sanids_x86.Reg
module Decode = Sanids_x86.Decode
module Emulator = Sanids_x86.Emulator
module V = Sanids_ir.Absint.V
module Imap = Map.Make (Int)

exception Bail
exception Refuted_path of string

let refute fmt = Printf.ksprintf (fun m -> raise (Refuted_path m)) fmt

type ctx = { code : string; len : int; arena : int; cfg : Confirm.config }

type path = {
  regs : V.t array;  (* indexed by Reg.code; treated as immutable *)
  eip : int;  (* arena offset; bounds-checked at fetch *)
  df : bool option;  (* None once popfd loads an unknown flags word *)
  steps : int;
  syscalls : int;
  overlay : V.t Imap.t;  (* abstractly written bytes, each within [0,255] *)
  distinct : int;  (* |overlay| — mirror of the confirmer's written count *)
}

let getr p r = p.regs.(Reg.code r)

let setr p r v =
  let regs = Array.copy p.regs in
  regs.(Reg.code r) <- v;
  { p with regs }

let u64 v = Int64.logand (Int64.of_int32 v) 0xFFFF_FFFFL
let base64 = u64 Emulator.code_base

(* ------------------------------------------------------------------ *)
(* memory: pristine image + written-byte overlay *)

let byte_at ctx p off =
  match Imap.find_opt off p.overlay with
  | Some v -> v
  | None -> V.const (if off < ctx.len then Int32.of_int (Char.code ctx.code.[off]) else 0l)

let store_byte p off v =
  let existed = Imap.mem off p.overlay in
  {
    p with
    overlay = Imap.add off v p.overlay;
    distinct = (if existed then p.distinct else p.distinct + 1);
  }

(* Where can an access of [width] bytes at abstract address [a] land?
   [Exact off]: every represented address is the single in-arena offset
   [off] with all [width] bytes inside.  [Outside]: every concrete
   execution faults at this access (some byte of it is unmapped) — a
   deterministic [Halted], even if a prefix of the bytes was written
   first.  [Unknown]: could go either way. *)
type aclass = Exact of int | Outside | Unknown

let classify ctx a width =
  match V.is_const a with
  | Some addr ->
      let off = Int32.to_int (Int32.sub addr Emulator.code_base) in
      if off >= 0 && off <= ctx.arena - width then Exact off else Outside
  | None -> (
      match V.bounds a with
      | None -> Outside (* bottom: no concretization at all *)
      | Some (lo, hi) ->
          if
            Int64.compare hi base64 < 0
            || Int64.compare lo (Int64.add base64 (Int64.of_int (ctx.arena - width))) > 0
          then Outside
          else Unknown)

let shl v n = V.shift Insn.Shl v n
let shr v n = if n = 0 then v else V.shift Insn.Shr v n

let mem_read ctx p a width =
  match classify ctx a width with
  | Outside -> refute "memory read faults"
  | Unknown ->
      (* in-arena concretizations may see anything; out-of-arena ones
         refute on their own at this very access *)
      if width = 1 then V.range 0L 255L else V.top_clean
  | Exact off ->
      if width = 1 then byte_at ctx p off
      else
        let b i = byte_at ctx p (off + i) in
        let all_const =
          match (V.is_const (b 0), V.is_const (b 1), V.is_const (b 2), V.is_const (b 3)) with
          | Some b0, Some b1, Some b2, Some b3 ->
              Some
                (Int32.logor b0
                   (Int32.logor
                      (Int32.shift_left b1 8)
                      (Int32.logor (Int32.shift_left b2 16) (Int32.shift_left b3 24))))
          | _ -> None
        in
        (match all_const with
        | Some v -> V.const v
        | None ->
            V.logor (b 0) (V.logor (shl (b 1) 8) (V.logor (shl (b 2) 16) (shl (b 3) 24))))

let mem_write ctx p a width v =
  match classify ctx a width with
  | Outside -> refute "memory write faults"
  | Unknown -> raise Bail (* may write in-arena at an unknown offset *)
  | Exact off ->
      if width = 1 then store_byte p off (V.low_byte v)
      else begin
        match V.is_const v with
        | Some c ->
            let b sh = V.const (Int32.logand (Int32.shift_right_logical c sh) 0xFFl) in
            let p = store_byte p off (b 0) in
            let p = store_byte p (off + 1) (b 8) in
            let p = store_byte p (off + 2) (b 16) in
            store_byte p (off + 3) (b 24)
        | None ->
            let b sh = V.low_byte (shr v sh) in
            let p = store_byte p off (b 0) in
            let p = store_byte p (off + 1) (b 8) in
            let p = store_byte p (off + 2) (b 16) in
            store_byte p (off + 3) (b 24)
      end

(* ------------------------------------------------------------------ *)
(* operands *)

let scale_int = function Insn.S1 -> 1l | Insn.S2 -> 2l | Insn.S4 -> 4l | Insn.S8 -> 8l

let ea p (m : Insn.mem) =
  let base = match m.Insn.base with Some b -> getr p b | None -> V.const 0l in
  let index =
    match m.Insn.index with
    | Some (r, sc) -> V.mul (getr p r) (V.const (scale_int sc))
    | None -> V.const 0l
  in
  V.add_wrapped (V.add base index) m.Insn.disp

let is_high8 (r : Reg.r8) =
  match r with Reg.AH | Reg.CH | Reg.DH | Reg.BH -> true | _ -> false

let reg8_get p (r : Reg.r8) =
  let parent = getr p (Reg.parent8 r) in
  if is_high8 r then V.logand (shr parent 8) (V.const 0xFFl) else V.low_byte parent

(* [v] must lie within [0,255] *)
let reg8_set p (r : Reg.r8) v =
  let pr = Reg.parent8 r in
  let parent = getr p pr in
  let merged =
    if is_high8 r then
      match (V.is_const parent, V.is_const v) with
      | Some pc, Some vc ->
          V.const (Int32.logor (Int32.logand pc 0xFFFF00FFl) (Int32.shift_left vc 8))
      | _ -> V.logor (V.logand parent (V.const 0xFFFF00FFl)) (shl v 8)
    else V.merge_low8 parent v
  in
  setr p pr merged

let read_operand ctx p (sz : Insn.size) (o : Insn.operand) =
  match (o, sz) with
  | Insn.Reg r, Insn.S32bit -> getr p r
  | Insn.Reg8 r, Insn.S8bit -> reg8_get p r
  | Insn.Imm v, Insn.S32bit -> V.const v
  | Insn.Imm v, Insn.S8bit -> V.const (Int32.logand v 0xFFl)
  | Insn.Mem m, Insn.S32bit -> mem_read ctx p (ea p m) 4
  | Insn.Mem m, Insn.S8bit -> mem_read ctx p (ea p m) 1
  | Insn.Reg _, Insn.S8bit | Insn.Reg8 _, Insn.S32bit -> refute "operand width mismatch"

let write_operand ctx p (sz : Insn.size) (o : Insn.operand) v =
  match (o, sz) with
  | Insn.Reg r, Insn.S32bit -> setr p r v
  | Insn.Reg8 r, Insn.S8bit -> reg8_set p r (V.low_byte v)
  | Insn.Mem m, Insn.S32bit -> mem_write ctx p (ea p m) 4 v
  | Insn.Mem m, Insn.S8bit -> mem_write ctx p (ea p m) 1 v
  | Insn.Imm _, _ -> refute "write to immediate"
  | Insn.Reg _, Insn.S8bit | Insn.Reg8 _, Insn.S32bit -> refute "operand width mismatch"

let trunc sz v =
  match sz with Insn.S8bit -> V.logand v (V.const 0xFFl) | Insn.S32bit -> v

(* a value whose exact magnitude we lost; keep the taint judgement *)
let wide_top vs = if List.exists V.taint vs then V.top else V.top_clean
let byte_unknown vs = V.tainted (V.range 0L 255L) |> fun t -> if List.exists V.taint vs then t else V.range 0L 255L

(* ------------------------------------------------------------------ *)
(* stack *)

let do_push ctx p v =
  let esp = V.add_wrapped (getr p Reg.ESP) (-4l) in
  let p = setr p Reg.ESP esp in
  mem_write ctx p esp 4 v

let do_pop ctx p =
  let esp = getr p Reg.ESP in
  let v = mem_read ctx p esp 4 in
  (v, setr p Reg.ESP (V.add_wrapped esp 4l))

(* ------------------------------------------------------------------ *)
(* string ops *)

let advanced p v n =
  match p.df with
  | Some false -> V.add_wrapped v (Int32.of_int n)
  | Some true -> V.add_wrapped v (Int32.of_int (-n))
  | None -> V.join (V.add_wrapped v (Int32.of_int n)) (V.add_wrapped v (Int32.of_int (-n)))

let lods ctx p n =
  let esi = getr p Reg.ESI in
  let v = mem_read ctx p esi n in
  let p = if n = 1 then reg8_set p Reg.AL v else setr p Reg.EAX v in
  setr p Reg.ESI (advanced p esi n)

let stos ctx p n =
  let edi = getr p Reg.EDI in
  let v = if n = 1 then reg8_get p Reg.AL else getr p Reg.EAX in
  let p = mem_write ctx p edi n v in
  setr p Reg.EDI (advanced p edi n)

let movs ctx p n =
  let esi = getr p Reg.ESI and edi = getr p Reg.EDI in
  let v = mem_read ctx p esi n in
  let p = mem_write ctx p edi n v in
  let p = setr p Reg.ESI (advanced p esi n) in
  setr p Reg.EDI (advanced p edi n)

(* ------------------------------------------------------------------ *)
(* 8-bit shift mirror (exact on constants, [0,255] otherwise) *)

let shift8_const (op : Insn.shift) v count =
  let n = count land 31 in
  if n = 0 then v
  else
    match op with
    | Insn.Shl -> (v lsl n) land 0xFF
    | Insn.Shr -> v lsr n
    | Insn.Sar ->
        let s = if v land 0x80 <> 0 then v - 0x100 else v in
        s asr n land 0xFF
    | Insn.Rol ->
        let n = n mod 8 in
        if n = 0 then v else ((v lsl n) lor (v lsr (8 - n))) land 0xFF
    | Insn.Ror ->
        let n = n mod 8 in
        if n = 0 then v else ((v lsr n) lor (v lsl (8 - n))) land 0xFF

let do_shift sz op v n =
  match sz with
  | Insn.S32bit -> V.shift op v n
  | Insn.S8bit -> (
      match V.is_const v with
      | Some c -> V.const (Int32.of_int (shift8_const op (Int32.to_int c land 0xFF) n))
      | None -> byte_unknown [ v ])

(* ------------------------------------------------------------------ *)
(* one instruction: returns the successor paths (1, 2, or 0 when every
   branch direction is infeasible) *)

let step_insn ctx p (d : Decode.decoded) =
  let next32 =
    Int32.add (Int32.add Emulator.code_base (Int32.of_int p.eip)) (Int32.of_int d.Decode.len)
  in
  let next = p.eip + d.Decode.len in
  let jrel disp =
    Int32.to_int (Int32.sub (Int32.add next32 (Int32.of_int disp)) Emulator.code_base)
  in
  let p = { p with steps = p.steps + 1 } in
  let at p off = [ { p with eip = off } ] in
  let fall p = at p next in
  match d.Decode.insn with
  | Insn.Mov (sz, dst, src) -> fall (write_operand ctx p sz dst (read_operand ctx p sz src))
  | Insn.Arith (op, sz, dst, src) ->
      let a = read_operand ctx p sz dst in
      let b = read_operand ctx p sz src in
      let write v = write_operand ctx p sz dst (trunc sz v) in
      fall
        (match op with
        | Insn.Add -> write (V.add a b)
        | Insn.Adc ->
            let s = V.add a b in
            write (V.join s (V.add_wrapped s 1l))
        | Insn.Sub -> write (V.sub a b)
        | Insn.Sbb ->
            let s = V.sub a b in
            write (V.join s (V.add_wrapped s (-1l)))
        | Insn.Cmp -> p
        | Insn.And -> write (V.logand a b)
        | Insn.Or -> write (V.logor a b)
        | Insn.Xor -> write (V.logxor a b))
  | Insn.Test (sz, a, b) ->
      let _ = read_operand ctx p sz a in
      let _ = read_operand ctx p sz b in
      fall p
  | Insn.Not (sz, o) ->
      fall (write_operand ctx p sz o (trunc sz (V.lognot (read_operand ctx p sz o))))
  | Insn.Neg (sz, o) ->
      fall (write_operand ctx p sz o (trunc sz (V.neg (read_operand ctx p sz o))))
  | Insn.Inc (sz, o) ->
      fall (write_operand ctx p sz o (trunc sz (V.add_wrapped (read_operand ctx p sz o) 1l)))
  | Insn.Dec (sz, o) ->
      fall (write_operand ctx p sz o (trunc sz (V.add_wrapped (read_operand ctx p sz o) (-1l))))
  | Insn.Shift (op, sz, o, n) ->
      fall (write_operand ctx p sz o (do_shift sz op (read_operand ctx p sz o) n))
  | Insn.Lea (r, m) -> fall (setr p r (ea p m))
  | Insn.Xchg (a, b) ->
      let va = getr p a and vb = getr p b in
      fall (setr (setr p a vb) b va)
  | Insn.Push_reg r -> fall (do_push ctx p (getr p r))
  | Insn.Pop_reg r ->
      let v, p = do_pop ctx p in
      fall (setr p r v)
  | Insn.Push_imm v -> fall (do_push ctx p (V.const v))
  | Insn.Pushad ->
      let esp0 = getr p Reg.ESP in
      let values =
        List.map
          (fun r -> if Reg.equal r Reg.ESP then esp0 else getr p r)
          [ Reg.EAX; Reg.ECX; Reg.EDX; Reg.EBX; Reg.ESP; Reg.EBP; Reg.ESI; Reg.EDI ]
      in
      fall (List.fold_left (fun p v -> do_push ctx p v) p values)
  | Insn.Popad ->
      fall
        (List.fold_left
           (fun p r ->
             let v, p = do_pop ctx p in
             if Reg.equal r Reg.ESP then p else setr p r v)
           p
           [ Reg.EDI; Reg.ESI; Reg.EBP; Reg.ESP; Reg.EBX; Reg.EDX; Reg.ECX; Reg.EAX ])
  | Insn.Pushfd ->
      (* flags_word always has bit 1 set and fits in 12 bits *)
      fall (do_push ctx p (V.range 2L 0xFC7L))
  | Insn.Popfd ->
      let v, p = do_pop ctx p in
      let df =
        match V.is_const v with
        | Some c -> Some (Int32.to_int c land 0x400 <> 0)
        | None -> None
      in
      fall { p with df }
  | Insn.Jmp_rel disp -> at p (jrel disp)
  | Insn.Jcc_rel (_, disp) ->
      (* no flags in the domain: always fork both directions *)
      at p (jrel disp) @ fall p
  | Insn.Call_rel disp ->
      (* the GetPC idiom: the pushed return address is a constant *)
      let p = do_push ctx p (V.const next32) in
      at p (jrel disp)
  | Insn.Loop disp -> (
      let ecx = V.add_wrapped (getr p Reg.ECX) (-1l) in
      match V.is_const ecx with
      | Some 0l -> fall (setr p Reg.ECX ecx)
      | Some _ -> at (setr p Reg.ECX ecx) (jrel disp)
      | None ->
          if not (V.contains ecx 0l) then at (setr p Reg.ECX ecx) (jrel disp)
          else
            let taken =
              let refined = V.without ecx 0l in
              if V.is_bot refined then [] else at (setr p Reg.ECX refined) (jrel disp)
            in
            taken @ fall (setr p Reg.ECX (V.const 0l)))
  | Insn.Loope disp | Insn.Loopne disp -> (
      let ecx = V.add_wrapped (getr p Reg.ECX) (-1l) in
      let p = setr p Reg.ECX ecx in
      (* zf is unknown: fall-through is possible whenever the loop
         reaches here; the taken edge additionally needs ecx <> 0 *)
      match V.is_const ecx with
      | Some 0l -> fall p
      | _ ->
          let taken =
            let refined = V.without ecx 0l in
            if V.is_bot refined then [] else at (setr p Reg.ECX refined) (jrel disp)
          in
          taken @ fall p)
  | Insn.Jecxz disp -> (
      let ecx = getr p Reg.ECX in
      match V.is_const ecx with
      | Some 0l -> at p (jrel disp)
      | Some _ -> fall p
      | None ->
          let taken =
            if V.contains ecx 0l then at (setr p Reg.ECX (V.const 0l)) (jrel disp) else []
          in
          let fallthrough =
            let refined = V.without ecx 0l in
            if V.is_bot refined then [] else fall (setr p Reg.ECX refined)
          in
          taken @ fallthrough)
  | Insn.Ret -> (
      let v, p = do_pop ctx p in
      match V.is_const v with
      | Some addr -> at p (Int32.to_int (Int32.sub addr Emulator.code_base))
      | None -> raise Bail)
  | Insn.Int 0x80 ->
      let nr = V.low_byte (getr p Reg.EAX) in
      let may_execve = V.contains nr 11l in
      let may_socket =
        V.contains nr 102l
        &&
        let ebx = getr p Reg.EBX in
        let rec any k = k <= 17 && (V.contains ebx (Int32.of_int k) || any (k + 1)) in
        any 1
      in
      if may_execve || may_socket then raise Bail
      else if p.syscalls + 1 >= ctx.cfg.max_syscalls then
        refute "%d syscalls without execve or socketcall" (p.syscalls + 1)
      else fall { (setr p Reg.EAX (V.const 3l)) with syscalls = p.syscalls + 1 }
  | Insn.Int n -> refute "interrupt 0x%x is not a linux syscall" n
  | Insn.Int3 -> refute "int3"
  | Insn.Nop | Insn.Fwait -> fall p
  | Insn.Clc | Insn.Stc | Insn.Cmc | Insn.Sahf -> fall p
  | Insn.Lahf -> fall (reg8_set p Reg.AH (V.range 2L 0xC7L))
  | Insn.Cld -> fall { p with df = Some false }
  | Insn.Std -> fall { p with df = Some true }
  | Insn.Lodsb -> fall (lods ctx p 1)
  | Insn.Lodsd -> fall (lods ctx p 4)
  | Insn.Stosb -> fall (stos ctx p 1)
  | Insn.Stosd -> fall (stos ctx p 4)
  | Insn.Movsb -> fall (movs ctx p 1)
  | Insn.Movsd -> fall (movs ctx p 4)
  | Insn.Scasb ->
      let edi = getr p Reg.EDI in
      let _ = mem_read ctx p edi 1 in
      fall (setr p Reg.EDI (advanced p edi 1))
  | Insn.Cmpsb ->
      let esi = getr p Reg.ESI and edi = getr p Reg.EDI in
      let _ = mem_read ctx p esi 1 in
      let _ = mem_read ctx p edi 1 in
      let p = setr p Reg.ESI (advanced p esi 1) in
      fall (setr p Reg.EDI (advanced p edi 1))
  | Insn.Cdq -> (
      let eax = getr p Reg.EAX in
      match V.bounds eax with
      | Some (_, hi) when Int64.compare hi 0x8000_0000L < 0 -> fall (setr p Reg.EDX (V.const 0l))
      | Some (lo, _) when Int64.compare lo 0x8000_0000L >= 0 ->
          fall (setr p Reg.EDX (V.const 0xFFFFFFFFl))
      | _ -> fall (setr p Reg.EDX (V.join (V.const 0l) (V.const 0xFFFFFFFFl))))
  | Insn.Cwde -> (
      let eax = getr p Reg.EAX in
      match V.is_const eax with
      | Some c ->
          let ax = Int32.to_int (Int32.logand c 0xFFFFl) in
          let v = if ax >= 0x8000 then ax - 0x10000 else ax in
          fall (setr p Reg.EAX (V.const (Int32.of_int v)))
      | None -> fall (setr p Reg.EAX (wide_top [ eax ])))
  | Insn.Rep_movsb | Insn.Rep_movsd | Insn.Rep_stosb | Insn.Rep_stosd -> (
      let width =
        match d.Decode.insn with Insn.Rep_movsd | Insn.Rep_stosd -> 4 | _ -> 1
      in
      let is_movs =
        match d.Decode.insn with Insn.Rep_movsb | Insn.Rep_movsd -> true | _ -> false
      in
      let ecx = getr p Reg.ECX in
      match V.is_const ecx with
      | Some 0l -> fall p
      | Some k32 ->
          let k = Int64.to_int (u64 k32) in
          if k > 4096 || p.df = None then raise Bail
          else
            let rec iter p i =
              if i >= k then p
              else
                let p = if is_movs then movs ctx p width else stos ctx p width in
                iter (setr p Reg.ECX (V.add_wrapped (getr p Reg.ECX) (-1l))) (i + 1)
            in
            fall (iter p 0)
      | None ->
          if not (V.contains ecx 0l) then begin
            (* at least one iteration on every concretization: if that
               first access must fault, the whole instruction refutes *)
            (if is_movs then
               match classify ctx (getr p Reg.ESI) width with
               | Outside -> refute "memory read faults"
               | _ -> ());
            match classify ctx (getr p Reg.EDI) width with
            | Outside -> refute "memory write faults"
            | _ -> raise Bail
          end
          else raise Bail)
  | Insn.Movzx (dst, src) ->
      fall (setr p dst (V.logand (read_operand ctx p Insn.S8bit src) (V.const 0xFFl)))
  | Insn.Movsx (dst, src) -> (
      let v = read_operand ctx p Insn.S8bit src in
      match V.is_const v with
      | Some c ->
          let b = Int32.to_int c land 0xFF in
          fall (setr p dst (V.const (Int32.of_int (if b >= 0x80 then b - 0x100 else b))))
      | None -> fall (setr p dst (wide_top [ v ])))
  | Insn.Mul (sz, rm) | Insn.Imul (sz, rm) -> (
      let signed = match d.Decode.insn with Insn.Imul _ -> true | _ -> false in
      match sz with
      | Insn.S8bit -> (
          let bv = read_operand ctx p Insn.S8bit rm in
          let eax = getr p Reg.EAX in
          match (V.is_const eax, V.is_const bv) with
          | Some eaxc, Some bc ->
              let a = Int32.to_int eaxc land 0xFF in
              let b = Int32.to_int bc land 0xFF in
              let sx v = if signed && v >= 0x80 then v - 0x100 else v in
              let full = sx a * sx b in
              fall
                (setr p Reg.EAX
                   (V.const
                      (Int32.logor
                         (Int32.logand eaxc 0xFFFF0000l)
                         (Int32.of_int (full land 0xFFFF)))))
          | _ ->
              fall
                (setr p Reg.EAX
                   (V.logor (V.logand eax (V.const 0xFFFF0000l)) (V.range 0L 0xFFFFL))))
      | Insn.S32bit -> (
          let bv = read_operand ctx p Insn.S32bit rm in
          let eax = getr p Reg.EAX in
          match (V.is_const eax, V.is_const bv) with
          | Some a, Some b ->
              let wide v =
                if signed then Int64.of_int32 v else Int64.logand (Int64.of_int32 v) 0xFFFFFFFFL
              in
              let product = Int64.mul (wide a) (wide b) in
              let p = setr p Reg.EAX (V.const (Int64.to_int32 product)) in
              fall (setr p Reg.EDX (V.const (Int64.to_int32 (Int64.shift_right_logical product 32))))
          | _ ->
              let t = wide_top [ eax; bv ] in
              fall (setr (setr p Reg.EAX t) Reg.EDX t)))
  | Insn.Div (sz, rm) | Insn.Idiv (sz, rm) -> (
      let signed = match d.Decode.insn with Insn.Idiv _ -> true | _ -> false in
      let raw = read_operand ctx p sz rm in
      (match V.is_const raw with
      | Some c ->
          let z =
            match sz with
            | Insn.S8bit -> Int32.to_int c land 0xFF = 0
            | Insn.S32bit -> Int32.equal c 0l
          in
          if z then refute "divide error"
      | None -> ());
      (* a non-constant divisor containing 0 is fine to continue past:
         the zero concretizations refute right here on their own *)
      match sz with
      | Insn.S8bit -> (
          let eax = getr p Reg.EAX in
          match (V.is_const eax, V.is_const raw) with
          | Some eaxc, Some bc ->
              let divisor =
                let v = Int32.to_int bc land 0xFF in
                if signed && v >= 0x80 then v - 0x100 else v
              in
              let ax = Int32.to_int (Int32.logand eaxc 0xFFFFl) in
              let ax = if signed && ax >= 0x8000 then ax - 0x10000 else ax in
              let q = ax / divisor and r = ax mod divisor in
              fall
                (reg8_set
                   (reg8_set p Reg.AL (V.const (Int32.of_int (q land 0xFF))))
                   Reg.AH
                   (V.const (Int32.of_int (r land 0xFF))))
          | _ ->
              let b = byte_unknown [ eax; raw ] in
              fall (reg8_set (reg8_set p Reg.AL b) Reg.AH b))
      | Insn.S32bit -> (
          let eax = getr p Reg.EAX and edx = getr p Reg.EDX in
          match (V.is_const eax, V.is_const edx, V.is_const raw) with
          | Some a, Some dx, Some b ->
              let divisor =
                if signed then Int64.of_int32 b else Int64.logand (Int64.of_int32 b) 0xFFFFFFFFL
              in
              let dividend =
                Int64.logor
                  (Int64.shift_left (Int64.logand (Int64.of_int32 dx) 0xFFFFFFFFL) 32)
                  (Int64.logand (Int64.of_int32 a) 0xFFFFFFFFL)
              in
              let q, r =
                if signed then (Int64.div dividend divisor, Int64.rem dividend divisor)
                else (Int64.unsigned_div dividend divisor, Int64.unsigned_rem dividend divisor)
              in
              let p = setr p Reg.EAX (V.const (Int64.to_int32 q)) in
              fall (setr p Reg.EDX (V.const (Int64.to_int32 r)))
          | _ ->
              let t = wide_top [ eax; edx; raw ] in
              fall (setr (setr p Reg.EAX t) Reg.EDX t)))
  | Insn.Imul2 (dst, rm) -> (
      let bv = read_operand ctx p Insn.S32bit rm in
      let dv = getr p dst in
      match (V.is_const dv, V.is_const bv) with
      | Some a, Some b ->
          fall (setr p dst (V.const (Int64.to_int32 (Int64.mul (Int64.of_int32 a) (Int64.of_int32 b)))))
      | _ -> fall (setr p dst (wide_top [ dv; bv ])))
  | Insn.Imul3 (dst, rm, imm) -> (
      let bv = read_operand ctx p Insn.S32bit rm in
      match V.is_const bv with
      | Some b ->
          fall
            (setr p dst (V.const (Int64.to_int32 (Int64.mul (Int64.of_int32 b) (Int64.of_int32 imm)))))
      | None -> fall (setr p dst (wide_top [ bv ])))
  | Insn.Bad b -> refute "undecodable byte 0x%02x" b

(* ------------------------------------------------------------------ *)
(* fetch: materialise the emulator's 16-byte window from overlay plus
   pristine image, and only trust the decode when it consumed exactly
   known bytes *)

let fetch ctx p =
  if p.eip < 0 || p.eip >= ctx.arena then refute "unmapped eip at offset 0x%x" p.eip;
  let avail = min 16 (ctx.arena - p.eip) in
  let buf = Bytes.make avail '\x00' in
  let precise = ref avail in
  for i = avail - 1 downto 0 do
    match V.is_const (byte_at ctx p (p.eip + i)) with
    | Some c -> Bytes.set buf i (Char.chr (Int32.to_int c land 0xFF))
    | None -> precise := i
  done;
  match Decode.at (Bytes.to_string buf) 0 with
  | None -> if !precise = avail then refute "fetch past end" else raise Bail
  | Some d -> if d.Decode.len <= !precise then d else raise Bail

(* ------------------------------------------------------------------ *)
(* driver *)

let max_forks = 64
let max_gas = 200_000

let initial_path ctx entry =
  let regs = Array.make 8 (V.const 0l) in
  regs.(Reg.code Reg.ESP) <-
    V.const (Int32.add Emulator.code_base (Int32.of_int (ctx.arena - 16)));
  { regs; eip = entry; df = Some false; steps = 0; syscalls = 0; overlay = Imap.empty; distinct = 0 }

let run ?(config = Confirm.default_config) ~code ~entry () =
  let len = String.length code in
  if len = 0 || entry < 0 || entry >= len || len > config.arena_size - 4096 then
    (* Confirm.run answers [Inconclusive (Fault _)] here without running
       the emulator; never claim a refutation *)
    None
  else begin
    let ctx = { code; len; arena = config.arena_size; cfg = config } in
    let gas = ref max_gas in
    let forks = ref 0 in
    let first_reason = ref None in
    let refuted_paths = ref 0 in
    let pending = ref [ initial_path ctx entry ] in
    let rec explore p =
      (* mirror of the confirmer's loop head, in the same order *)
      if p.distinct >= ctx.cfg.min_written && Imap.mem p.eip p.overlay then
        raise Bail (* the concrete run would confirm decryption *)
      else if p.steps >= ctx.cfg.max_steps then raise Bail (* would be Inconclusive Budget *)
      else begin
        decr gas;
        if !gas <= 0 then raise Bail;
        let d = fetch ctx p in
        match step_insn ctx p d with
        | [] -> () (* every branch direction infeasible: no concretization *)
        | [ p' ] -> explore p'
        | p' :: rest ->
            incr forks;
            if !forks > max_forks then raise Bail;
            pending := rest @ !pending;
            explore p'
      end
    in
    try
      let rec drain () =
        match !pending with
        | [] -> ()
        | p :: rest ->
            pending := rest;
            (try explore p
             with Refuted_path r ->
               incr refuted_paths;
               if !first_reason = None then first_reason := Some r);
            drain ()
      in
      drain ();
      match !first_reason with
      | Some r ->
          Some
            (if !refuted_paths = 1 then r
             else Printf.sprintf "%s (and %d more abstract paths)" r (!refuted_paths - 1))
      | None -> None
    with Bail -> None
  end
