(* Tests for the hybrid semantic→syntactic fast path and the dedicated
   workload generators. *)

open Sanids_net
open Sanids_nids
open Sanids_exploits

let ip = Ipaddr.of_string
let attacker k = Ipaddr.of_octets 198 51 100 k
let victim = ip "10.0.0.80"

let cfg = Config.default |> Config.with_classification false

(* ------------------------------------------------------------------ *)
(* hybrid: stable-framing campaign gets a deployed signature *)

let crii_packet k ts =
  Code_red.packet ~ts ~src:(attacker k) ~dst:victim ~src_port:(1024 + k) ()

let test_signature_deploys_for_codered () =
  let h = Hybrid.create ~pool_size:3 cfg in
  for k = 1 to 3 do
    let alerts = Hybrid.process_packet h (crii_packet k (float_of_int k)) in
    Alcotest.(check bool) "semantic path alerts" true
      (List.exists (fun a -> a.Alert.template = "code-red-ii") alerts)
  done;
  Alcotest.(check bool) "signature deployed after pool fills" true
    (List.mem_assoc "code-red-ii" (Hybrid.deployed_signatures h));
  (* the next instance takes the fast path *)
  let before = Hybrid.fast_path_hits h in
  let alerts = Hybrid.process_packet h (crii_packet 9 9.0) in
  Alcotest.(check bool) "still alerts" true
    (List.exists (fun a -> a.Alert.template = "code-red-ii") alerts);
  Alcotest.(check int) "fast path used" (before + 1) (Hybrid.fast_path_hits h)

let test_no_signature_for_polymorphic () =
  (* raw polymorphic shellcode (no protocol wrapper): the instances share
     no byte invariant, so inference must not deploy anything and every
     instance keeps taking the semantic path.  (When the same campaign is
     delivered in fixed HTTP framing, signing the wrapper IS possible and
     correct — that is Polygraph's observation, covered in test_siggen.) *)
  let h = Hybrid.create ~pool_size:3 cfg in
  let rng = Rng.create 0x4B1D_0001L in
  let classic = (Shellcodes.find "classic").Shellcodes.code in
  for k = 1 to 6 do
    let g = Sanids_polymorph.Admmutate.generate rng ~payload:classic in
    let p =
      Packet.build_tcp ~ts:(float_of_int k) ~src:(attacker k) ~dst:victim
        ~src_port:(3000 + k) ~dst_port:80 g.Sanids_polymorph.Admmutate.code
    in
    let alerts = Hybrid.process_packet h p in
    Alcotest.(check bool) "semantic path still catches it" true (alerts <> [])
  done;
  Alcotest.(check int) "no fast-path hits for polymorphic campaign" 0
    (Hybrid.fast_path_hits h)

let test_signature_from_framed_campaign_is_sound () =
  (* HTTP-framed polymorphic campaign: the wrapper may be signed (that is
     fine and real), but the deployed fast path must not fire on benign *)
  let h = Hybrid.create ~pool_size:3 cfg in
  let rng = Rng.create 0x4B1D_0003L in
  let classic = (Shellcodes.find "classic").Shellcodes.code in
  for k = 1 to 5 do
    let g = Sanids_polymorph.Admmutate.generate rng ~payload:classic in
    let p =
      Exploit_gen.packet rng ~ts:(float_of_int k) ~src:(attacker k) ~dst:victim
        ~shellcode:g.Sanids_polymorph.Admmutate.code
    in
    ignore (Hybrid.process_packet h p)
  done;
  let benign =
    Sanids_workload.Benign_gen.packets (Rng.create 0x4B1D_0004L) ~n:300 ~t0:0.0
      ~clients:(Ipaddr.prefix_of_string "10.1.0.0/16")
      ~servers:(Ipaddr.prefix_of_string "10.2.0.0/16")
  in
  Alcotest.(check int) "fast path quiet on benign" 0
    (List.length (Hybrid.process_packets h benign))

let test_fast_path_does_not_false_positive () =
  let h = Hybrid.create ~pool_size:3 cfg in
  for k = 1 to 3 do
    ignore (Hybrid.process_packet h (crii_packet k (float_of_int k)))
  done;
  let rng = Rng.create 0x4B1D_0002L in
  let clients = Ipaddr.prefix_of_string "10.1.0.0/16" in
  let servers = Ipaddr.prefix_of_string "10.2.0.0/16" in
  let benign = Sanids_workload.Benign_gen.packets rng ~n:400 ~t0:0.0 ~clients ~servers in
  let alerts = Hybrid.process_packets h benign in
  Alcotest.(check int) "benign stays quiet past the fast path" 0 (List.length alerts)

(* ------------------------------------------------------------------ *)
(* workload generators *)

let clients = Ipaddr.prefix_of_string "10.1.0.0/16"
let servers = Ipaddr.prefix_of_string "10.2.0.0/16"

let test_benign_deterministic () =
  let mk seed = Sanids_workload.Benign_gen.packets (Rng.create seed) ~n:50 ~t0:0.0 ~clients ~servers in
  let render pkts = List.map Packet.to_bytes pkts in
  Alcotest.(check bool) "same seed same trace" true (render (mk 5L) = render (mk 5L));
  Alcotest.(check bool) "different seed different trace" true
    (render (mk 5L) <> render (mk 6L))

let test_benign_timestamps_increase () =
  let pkts = Sanids_workload.Benign_gen.packets (Rng.create 7L) ~n:200 ~t0:10.0 ~clients ~servers in
  let rec increasing = function
    | a :: (b :: _ as tl) -> a.Packet.ts <= b.Packet.ts && increasing tl
    | _ -> true
  in
  Alcotest.(check bool) "monotone" true (increasing pkts);
  Alcotest.(check bool) "starts after t0" true ((List.hd pkts).Packet.ts >= 10.0)

let test_benign_rate_controls_span () =
  let span rate =
    let pkts = Sanids_workload.Benign_gen.packets ~rate (Rng.create 8L) ~n:500 ~t0:0.0 ~clients ~servers in
    (List.nth pkts 499).Packet.ts
  in
  Alcotest.(check bool) "higher rate compresses time" true (span 10000.0 < span 100.0)

let test_benign_payloads_parse () =
  (* every generated packet round-trips through the codecs *)
  let pkts = Sanids_workload.Benign_gen.packets (Rng.create 9L) ~n:300 ~t0:0.0 ~clients ~servers in
  List.iter
    (fun p ->
      match Packet.parse ~ts:p.Packet.ts (Packet.to_bytes p) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "generated packet failed to parse: %s" e)
    pkts

let test_mix_proportions () =
  let rng = Rng.create 10L in
  let pkts = Sanids_workload.Benign_gen.packets rng ~n:2000 ~t0:0.0 ~clients ~servers in
  let http =
    List.length
      (List.filter (fun p -> match Packet.ports p with Some (_, 80) -> true | _ -> false) pkts)
  in
  let dns =
    List.length
      (List.filter (fun p -> match Packet.ports p with Some (_, 53) -> true | _ -> false) pkts)
  in
  (* default mix: 72% http + 8% binary on port 80, 10% dns *)
  Alcotest.(check bool) "port 80 near 80%" true (http > 1400 && http < 1800);
  Alcotest.(check bool) "dns near 10%" true (dns > 120 && dns < 280)

let () =
  Alcotest.run "hybrid"
    [
      ( "fast path",
        [
          Alcotest.test_case "deploys for code red" `Quick test_signature_deploys_for_codered;
          Alcotest.test_case "no deploy for polymorphic" `Quick test_no_signature_for_polymorphic;
          Alcotest.test_case "no fast-path FPs" `Quick test_fast_path_does_not_false_positive;
          Alcotest.test_case "framed campaign sound" `Quick test_signature_from_framed_campaign_is_sound;
        ] );
      ( "workload",
        [
          Alcotest.test_case "deterministic" `Quick test_benign_deterministic;
          Alcotest.test_case "timestamps increase" `Quick test_benign_timestamps_increase;
          Alcotest.test_case "rate controls span" `Quick test_benign_rate_controls_span;
          Alcotest.test_case "payloads parse" `Quick test_benign_payloads_parse;
          Alcotest.test_case "mix proportions" `Quick test_mix_proportions;
        ] );
    ]
