(* The federated-cluster contract:

   - Backoff: spec grammar, deterministic jitter, capped growth, and
     the retry driver under a fake clock;
   - Detector: the entire failure-detector transition table, re-stated
     independently and enumerated (the Lifecycle discipline);
   - Delta: bit-exact wire roundtrip (qcheck over snapshots including
     %h float gauges and sparse histograms) and truncation rejection;
   - Dedup x Fault: the exactness theorem — folding ANY at-least-once
     faulted delivery (drops-with-retry, duplicates, reorderings) of a
     delta stream through the dedup layer yields a cluster view EQUAL
     to the lossless merge;
   - Spool: epoch bumping across incarnations, journal/ack/pending;
   - Aggregator: an in-process end-to-end over a Unix socket — fresh
     and duplicate acks, malformed rejection, heartbeats, /-/sensors,
     the merged scrape, drain. *)

module Obs = Sanids_obs
module Httpd = Sanids_serve.Httpd
module Delta = Sanids_cluster.Delta
module Dedup = Sanids_cluster.Dedup
module Detector = Sanids_cluster.Detector
module Fault = Sanids_cluster.Fault
module Spool = Sanids_cluster.Spool
module Aggregator = Sanids_cluster.Aggregator

(* ------------------------------------------------------------------ *)
(* Backoff *)

let test_backoff_spec () =
  (match Backoff.of_string "base=0.1,factor=3,cap=1,jitter=0,timeout=2" with
  | Ok b ->
      Alcotest.(check (float 1e-9)) "base" 0.1 b.Backoff.base;
      Alcotest.(check (float 1e-9)) "factor" 3.0 b.Backoff.factor;
      Alcotest.(check (float 1e-9)) "cap" 1.0 b.Backoff.cap;
      let again = Backoff.of_string (Backoff.to_string b) in
      Alcotest.(check bool) "roundtrip" true (again = Ok b)
  | Error m -> Alcotest.fail m);
  (match Backoff.of_string "cap=9" with
  | Ok b ->
      Alcotest.(check (float 1e-9)) "subset keeps default base"
        Backoff.default.Backoff.base b.Backoff.base
  | Error m -> Alcotest.fail m);
  let is_error = function Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "unknown key" true (is_error (Backoff.of_string "bogus=1"));
  Alcotest.(check bool) "bad float" true (is_error (Backoff.of_string "base=x"));
  Alcotest.(check bool) "zero base" true (is_error (Backoff.of_string "base=0"));
  Alcotest.(check bool) "cap below base" true
    (is_error (Backoff.of_string "base=3,cap=1"));
  Alcotest.(check bool) "jitter above 1" true
    (is_error (Backoff.of_string "jitter=1.5"))

let test_backoff_delay () =
  let b = Backoff.default in
  (* deterministic: same (seed, attempt) -> same delay *)
  for attempt = 0 to 10 do
    Alcotest.(check (float 0.0))
      (Printf.sprintf "attempt %d deterministic" attempt)
      (Backoff.delay b ~seed:7L ~attempt)
      (Backoff.delay b ~seed:7L ~attempt)
  done;
  (* bounded: never above the cap, never below (1-jitter) of the
     un-jittered schedule, even deep past overflow territory *)
  List.iter
    (fun attempt ->
      let d = Backoff.delay b ~seed:3L ~attempt in
      let unjittered = Float.min b.Backoff.cap (b.Backoff.base *. (b.Backoff.factor ** float_of_int attempt)) in
      Alcotest.(check bool)
        (Printf.sprintf "attempt %d in [%g,%g], got %g" attempt
           ((1.0 -. b.Backoff.jitter) *. unjittered) unjittered d)
        true
        (d <= unjittered +. 1e-9
        && d >= ((1.0 -. b.Backoff.jitter) *. unjittered) -. 1e-9))
    [ 0; 1; 2; 3; 5; 10; 100; 10_000 ];
  (* different seeds decorrelate somewhere in the schedule *)
  let differs =
    List.exists
      (fun attempt ->
        Backoff.delay b ~seed:1L ~attempt <> Backoff.delay b ~seed:2L ~attempt)
      [ 0; 1; 2; 3; 4; 5 ]
  in
  Alcotest.(check bool) "seeds decorrelate" true differs

let test_backoff_retry () =
  let b = { Backoff.default with Backoff.base = 1.0; jitter = 0.0 } in
  let now = ref 0.0 in
  let slept = ref [] in
  let clock () = !now in
  let sleep d =
    slept := d :: !slept;
    now := !now +. d
  in
  let calls = ref 0 in
  (* succeeds on the third attempt *)
  let r =
    Backoff.retry ~sleep ~clock b ~seed:1L ~deadline:100.0 (fun ~attempt ->
        incr calls;
        if attempt < 2 then Error attempt else Ok attempt)
  in
  Alcotest.(check bool) "eventually ok" true (r = Ok 2);
  Alcotest.(check int) "three calls" 3 !calls;
  Alcotest.(check int) "two sleeps" 2 (List.length !slept);
  (* a deadline the schedule cannot meet returns the last error *)
  let calls = ref 0 in
  let r =
    Backoff.retry ~sleep ~clock b ~seed:1L ~deadline:(!now +. 1.5)
      (fun ~attempt ->
        incr calls;
        (Error attempt : (unit, int) result))
  in
  Alcotest.(check bool) "last error" true (r = Error (!calls - 1));
  Alcotest.(check bool) "gave up quickly" true (!calls <= 3)

(* ------------------------------------------------------------------ *)
(* Detector: the whole table, enumerated against an independent
   restatement of the protocol. *)

let detector_config = { Detector.suspect_after = 3.0; dead_after = 10.0 }

let detector_states = Detector.all_states

let detector_events =
  [
    Detector.Heard;
    Detector.Silence 0.0;
    Detector.Silence 2.9;
    Detector.Silence 3.0;
    Detector.Silence 9.9;
    Detector.Silence 10.0;
    Detector.Silence 1e9;
  ]

let detector_expected state event =
  match (state, event) with
  (* Heard always improves; only Heard resurrects *)
  | Detector.Dead, Detector.Heard -> Detector.Rejoined
  | (Detector.Alive | Detector.Suspect | Detector.Rejoined), Detector.Heard ->
      Detector.Alive
  (* silence never resurrects *)
  | Detector.Dead, Detector.Silence _ -> Detector.Dead
  (* silence degrades by threshold *)
  | (Detector.Alive | Detector.Suspect | Detector.Rejoined), Detector.Silence d
    ->
      if d >= 10.0 then Detector.Dead
      else if d >= 3.0 then Detector.Suspect
      else state

let test_detector_table () =
  List.iter
    (fun state ->
      List.iter
        (fun event ->
          let label =
            Printf.sprintf "%s + %s"
              (Detector.state_to_string state)
              (match event with
              | Detector.Heard -> "heard"
              | Detector.Silence d -> Printf.sprintf "silence %g" d)
          in
          Alcotest.(check string)
            label
            (Detector.state_to_string (detector_expected state event))
            (Detector.state_to_string (Detector.step detector_config state event)))
        detector_events)
    detector_states

let test_detector_walk () =
  let step s e = Detector.step detector_config s e in
  (* a sensor goes quiet, dies, speaks, and is alive two beats later *)
  let s = Detector.Alive in
  let s = step s (Detector.Silence 5.0) in
  Alcotest.(check string) "suspect" "suspect" (Detector.state_to_string s);
  let s = step s (Detector.Silence 2.0) in
  Alcotest.(check string) "short silence keeps suspect" "suspect"
    (Detector.state_to_string s);
  let s = step s (Detector.Silence 12.0) in
  Alcotest.(check string) "dead" "dead" (Detector.state_to_string s);
  let s = step s Detector.Heard in
  Alcotest.(check string) "rejoined" "rejoined" (Detector.state_to_string s);
  let s = step s Detector.Heard in
  Alcotest.(check string) "alive again" "alive" (Detector.state_to_string s)

let test_detector_validate () =
  let is_error = function Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "default valid" true
    (Detector.validate Detector.default_config = Ok Detector.default_config);
  Alcotest.(check bool) "zero suspect" true
    (is_error (Detector.validate { Detector.suspect_after = 0.0; dead_after = 1.0 }));
  Alcotest.(check bool) "dead below suspect" true
    (is_error (Detector.validate { Detector.suspect_after = 5.0; dead_after = 1.0 }))

(* ------------------------------------------------------------------ *)
(* Delta wire codec *)

let hist_snap obs =
  let h = Obs.Histogram.create () in
  List.iter (fun x -> Obs.Histogram.observe h x) obs;
  Obs.Histogram.snap h

let test_delta_roundtrip_unit () =
  let snapshot =
    Obs.Snapshot.of_list
      [
        ("sanids_packets_total", Obs.Snapshot.Counter 128);
        (* a labeled name with a space in the label value exercises the
           percent escaping *)
        ( "sanids_ingest_errors_total{reason=\"bad frame\"}",
          Obs.Snapshot.Counter 2 );
        ("sanids_config_generation", Obs.Snapshot.Gauge 0.1);
        ("sanids_stage_analyze_seconds", Obs.Snapshot.Hist (hist_snap [ 0.001; 0.2; 3.0 ]));
        ("empty_hist_seconds", Obs.Snapshot.Hist (hist_snap []));
      ]
  in
  let d = { Delta.sensor = "web-1"; epoch = 3; seq = 17; snapshot } in
  match Delta.decode (Delta.encode d) with
  | Error m -> Alcotest.fail m
  | Ok d' ->
      Alcotest.(check string) "sensor" "web-1" d'.Delta.sensor;
      Alcotest.(check int) "epoch" 3 d'.Delta.epoch;
      Alcotest.(check int) "seq" 17 d'.Delta.seq;
      Alcotest.(check bool) "snapshot equal" true
        (Obs.Snapshot.equal snapshot d'.Delta.snapshot)

let test_delta_rejects () =
  let ok =
    Delta.encode
      {
        Delta.sensor = "a";
        epoch = 1;
        seq = 1;
        snapshot = Obs.Snapshot.of_list [ ("x_total", Obs.Snapshot.Counter 1) ];
      }
  in
  let is_error s = match Delta.decode s with Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "empty" true (is_error "");
  Alcotest.(check bool) "bad magic" true (is_error "nope/1 x\n");
  (* every proper prefix is a truncation, never a smaller valid delta *)
  for cut = 0 to String.length ok - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "prefix %d rejected" cut)
      true
      (is_error (String.sub ok 0 cut))
  done;
  Alcotest.(check bool) "bad sensor id" true
    (is_error "sanids-delta/1 sensor=a/b epoch=1 seq=1 metrics=0\n");
  Alcotest.(check bool) "negative epoch" true
    (is_error "sanids-delta/1 sensor=a epoch=-1 seq=1 metrics=0\n");
  Alcotest.(check bool) "hist total mismatch" true
    (is_error "sanids-delta/1 sensor=a epoch=1 seq=1 metrics=1\nh x 0x0p+0 5 -\n")

let snapshot_gen =
  let open QCheck2.Gen in
  let entry =
    oneof
      [
        map2
          (fun i n ->
            (Printf.sprintf "c%d_total" (i mod 4), Obs.Snapshot.Counter (n mod 1000)))
          small_nat small_nat;
        map2
          (fun i f -> (Printf.sprintf "g%d" (i mod 3), Obs.Snapshot.Gauge f))
          small_nat
          (* irrational-ish floats: the %h wire must carry every bit *)
          (map (fun n -> Float.of_int n /. 7.0) small_nat);
        map2
          (fun i obs ->
            ( Printf.sprintf "h%d_seconds" (i mod 2),
              Obs.Snapshot.Hist (hist_snap (List.map (fun n -> float_of_int n /. 3.0) obs)) ))
          small_nat
          (list_size (int_range 0 6) (int_range 0 50));
      ]
  in
  map Obs.Snapshot.of_list (list_size (int_range 0 10) entry)

let prop_delta_roundtrip =
  QCheck2.Test.make ~name:"Delta.decode inverts Delta.encode bit-exactly"
    ~count:300 snapshot_gen (fun snapshot ->
      let d = { Delta.sensor = "s-1"; epoch = 2; seq = 9; snapshot } in
      match Delta.decode (Delta.encode d) with
      | Error _ -> false
      | Ok d' -> Obs.Snapshot.equal snapshot d'.Delta.snapshot)

(* ------------------------------------------------------------------ *)
(* Dedup x Fault: exactness under any at-least-once delivery. *)

(* A stream of distinct deltas across two sensors and two epochs each,
   with small random counter payloads. *)
let stream_gen =
  let open QCheck2.Gen in
  let delta sensor epoch seq =
    map
      (fun n ->
        {
          Delta.sensor;
          epoch;
          seq;
          snapshot =
            Obs.Snapshot.of_list
              [
                ("sanids_packets_total", Obs.Snapshot.Counter (n mod 50));
                ("sanids_ingest_records_total", Obs.Snapshot.Counter (n mod 50));
              ];
        })
      small_nat
  in
  let sensor_stream sensor =
    int_range 0 5 >>= fun n1 ->
    int_range 0 5 >>= fun n2 ->
    flatten_l
      (List.init n1 (fun i -> delta sensor 1 (i + 1))
      @ List.init n2 (fun i -> delta sensor 2 (i + 1)))
  in
  map2 ( @ ) (sensor_stream "a") (sensor_stream "b")

let plan_gen =
  let open QCheck2.Gen in
  let p = map (fun n -> float_of_int n /. 10.0) (int_range 0 10) in
  map3
    (fun drop dup reorder ->
      [ (Fault.Drop, drop); (Fault.Duplicate, dup); (Fault.Reorder, reorder) ])
    p p p

let fold_dedup deltas =
  List.fold_left (fun acc d -> fst (Dedup.apply acc d)) Dedup.empty deltas

let prop_dedup_exact_under_faults =
  QCheck2.Test.make
    ~name:"dedup(faulted at-least-once delivery) = lossless merge" ~count:300
    QCheck2.Gen.(triple stream_gen plan_gen (map Int64.of_int small_nat))
    (fun (stream, plan, seed) ->
      let lossless =
        List.fold_left
          (fun acc d -> Obs.Snapshot.merge acc d.Delta.snapshot)
          Obs.Snapshot.empty stream
      in
      let delivered = Fault.deliveries (Rng.create seed) plan stream in
      let view = Dedup.view (fold_dedup delivered) in
      Obs.Snapshot.equal view lossless)

let prop_deliveries_at_least_once =
  QCheck2.Test.make ~name:"Fault.deliveries loses nothing, invents nothing"
    ~count:300
    QCheck2.Gen.(
      triple (list_size (int_range 0 20) small_nat) plan_gen
        (map Int64.of_int small_nat))
    (fun (items, plan, seed) ->
      let delivered = Fault.deliveries (Rng.create seed) plan items in
      let module IS = Set.Make (Int) in
      IS.equal (IS.of_list delivered) (IS.of_list items)
      && List.length delivered >= List.length items)

let test_fault_spec () =
  (match Fault.of_string "drop=0.2,dup=0.1,delay=0.05,reorder=0.2,truncate=0.1" with
  | Ok plan ->
      Alcotest.(check int) "five kinds" 5 (List.length plan);
      Alcotest.(check bool) "roundtrip" true
        (Fault.of_string (Fault.to_string plan) = Ok plan)
  | Error m -> Alcotest.fail m);
  Alcotest.(check bool) "empty spec" true (Fault.of_string "" = Ok []);
  let is_error = function Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "unknown kind" true (is_error (Fault.of_string "melt=0.1"));
  Alcotest.(check bool) "bad prob" true (is_error (Fault.of_string "drop=2.0"))

let test_dedup_idempotent () =
  let d =
    {
      Delta.sensor = "a";
      epoch = 1;
      seq = 1;
      snapshot = Obs.Snapshot.of_list [ ("x_total", Obs.Snapshot.Counter 7) ];
    }
  in
  let t, o1 = Dedup.apply Dedup.empty d in
  let t, o2 = Dedup.apply t d in
  Alcotest.(check bool) "first fresh" true (o1 = Dedup.Fresh);
  Alcotest.(check bool) "second duplicate" true (o2 = Dedup.Duplicate);
  Alcotest.(check int) "value counted once" 7
    (Obs.Snapshot.counter_value (Dedup.view t) "x_total");
  match Dedup.stats t "a" with
  | None -> Alcotest.fail "no stats"
  | Some s ->
      Alcotest.(check int) "applied" 1 s.Dedup.applied;
      Alcotest.(check int) "duplicates" 1 s.Dedup.duplicates;
      Alcotest.(check int) "last epoch" 1 s.Dedup.last_epoch;
      Alcotest.(check int) "last seq" 1 s.Dedup.last_seq

(* ------------------------------------------------------------------ *)
(* Spool *)

let temp_dir () =
  let path = Filename.temp_file "sanids_spool_test" "" in
  Sys.remove path;
  path

let test_spool_epochs_and_replay () =
  let dir = temp_dir () in
  (* first incarnation journals two deltas, acks one, crashes *)
  (match Spool.open_dir dir with
  | Error m -> Alcotest.fail m
  | Ok s1 ->
      Alcotest.(check int) "first epoch" 1 (Spool.epoch s1);
      Alcotest.(check bool) "journal 1" true (Spool.journal s1 ~seq:1 "one" = Ok ());
      Alcotest.(check bool) "journal 2" true (Spool.journal s1 ~seq:2 "two" = Ok ());
      Spool.ack s1 ~epoch:1 ~seq:1);
  (* the respawn bumps the epoch and sees exactly the unacked delta *)
  (match Spool.open_dir dir with
  | Error m -> Alcotest.fail m
  | Ok s2 ->
      Alcotest.(check int) "second epoch" 2 (Spool.epoch s2);
      (match Spool.pending s2 with
      | [ (1, 2, "two") ] -> ()
      | p ->
          Alcotest.failf "expected [(1,2,two)], got %d entries" (List.length p));
      Alcotest.(check bool) "journal in new epoch" true
        (Spool.journal s2 ~seq:1 "three" = Ok ());
      (* pending orders prior incarnations first *)
      (match Spool.pending s2 with
      | [ (1, 2, "two"); (2, 1, "three") ] -> ()
      | p -> Alcotest.failf "bad order, %d entries" (List.length p));
      Spool.ack s2 ~epoch:1 ~seq:2;
      Spool.ack s2 ~epoch:2 ~seq:1;
      Alcotest.(check int) "all acked" 0 (List.length (Spool.pending s2)));
  (* third incarnation: epoch keeps rising even with an empty spool *)
  match Spool.open_dir dir with
  | Error m -> Alcotest.fail m
  | Ok s3 -> Alcotest.(check int) "third epoch" 3 (Spool.epoch s3)

(* ------------------------------------------------------------------ *)
(* Aggregator end-to-end, in process. *)

let wait_until ?(tries = 100) f =
  let rec go n = if f () then true else if n = 0 then false else (Unix.sleepf 0.05; go (n - 1)) in
  go tries

let test_aggregator_e2e () =
  let path = Filename.temp_file "sanids_agg_test" ".sock" in
  Sys.remove path;
  let options =
    {
      Aggregator.default_options with
      Aggregator.listen = Httpd.Unix_socket path;
      tick_every = 0.02;
      install_signals = false;
    }
  in
  let result = ref (Error "never ran") in
  let th = Thread.create (fun () -> result := Aggregator.run options) () in
  let listen = Httpd.Unix_socket path in
  let get p = Httpd.request ~timeout:5.0 listen ~verb:"GET" ~path:p () in
  let post p body =
    Httpd.request ~timeout:5.0 ~body listen ~verb:"POST" ~path:p ()
  in
  Alcotest.(check bool) "aggregator came up" true
    (wait_until (fun () -> match get "/healthz" with Ok (200, _) -> true | _ -> false));
  let delta seq n =
    Delta.encode
      {
        Delta.sensor = "t1";
        epoch = 1;
        seq;
        snapshot =
          Obs.Snapshot.of_list
            [
              ("sanids_packets_total", Obs.Snapshot.Counter n);
              ("sanids_ingest_records_total", Obs.Snapshot.Counter n);
            ];
      }
  in
  (match post "/-/delta" (delta 1 5) with
  | Ok (200, body) -> Alcotest.(check string) "fresh ack" "ack epoch=1 seq=1 fresh\n" body
  | Ok (s, b) -> Alcotest.failf "status %d: %s" s b
  | Error m -> Alcotest.fail m);
  (match post "/-/delta" (delta 1 5) with
  | Ok (200, body) ->
      Alcotest.(check string) "duplicate ack" "ack epoch=1 seq=1 duplicate\n" body
  | Ok (s, b) -> Alcotest.failf "status %d: %s" s b
  | Error m -> Alcotest.fail m);
  (match post "/-/delta" (delta 2 3) with
  | Ok (200, body) -> Alcotest.(check string) "second fresh" "ack epoch=1 seq=2 fresh\n" body
  | Ok (s, b) -> Alcotest.failf "status %d: %s" s b
  | Error m -> Alcotest.fail m);
  (match post "/-/delta" "sanids-delta/1 sensor=t1 epoch=1 seq=3 metrics=2\nc x" with
  | Ok (400, _) -> ()
  | Ok (s, b) -> Alcotest.failf "expected 400, got %d: %s" s b
  | Error m -> Alcotest.fail m);
  (match post "/-/heartbeat" "sensor=t1\n" with
  | Ok (200, _) -> ()
  | Ok (s, b) -> Alcotest.failf "heartbeat %d: %s" s b
  | Error m -> Alcotest.fail m);
  (match post "/-/heartbeat" "nonsense\n" with
  | Ok (400, _) -> ()
  | Ok (s, b) -> Alcotest.failf "expected 400, got %d: %s" s b
  | Error m -> Alcotest.fail m);
  (match get "/-/sensors" with
  | Ok (200, body) ->
      Alcotest.(check string) "sensors line"
        "sensor=t1 state=alive epoch=1 seq=2 epochs=1 applied=2 duplicates=1\n"
        body
  | Ok (s, b) -> Alcotest.failf "sensors %d: %s" s b
  | Error m -> Alcotest.fail m);
  (match get "/metrics" with
  | Ok (200, body) ->
      let has needle =
        let nl = String.length needle and bl = String.length body in
        let rec find i = i + nl <= bl && (String.sub body i nl = needle || find (i + 1)) in
        find 0
      in
      Alcotest.(check bool) "dedup view in scrape" true
        (has "sanids_packets_total 8");
      Alcotest.(check bool) "fresh counter" true
        (has "sanids_cluster_deltas_total{outcome=\"fresh\"} 2");
      Alcotest.(check bool) "duplicate counter" true
        (has "sanids_cluster_deltas_total{outcome=\"duplicate\"} 1");
      Alcotest.(check bool) "malformed counter" true
        (has "sanids_cluster_deltas_total{outcome=\"malformed\"} 1");
      Alcotest.(check bool) "heartbeat counter" true
        (has "sanids_cluster_heartbeats_total 1");
      Alcotest.(check bool) "alive gauge" true
        (has "sanids_cluster_sensors{state=\"alive\"} 1")
  | Ok (s, b) -> Alcotest.failf "metrics %d: %s" s b
  | Error m -> Alcotest.fail m);
  (match post "/-/drain" "" with
  | Ok (200, _) -> ()
  | Ok (s, b) -> Alcotest.failf "drain %d: %s" s b
  | Error m -> Alcotest.fail m);
  Thread.join th;
  Alcotest.(check bool) "clean exit" true (!result = Ok ());
  (try Sys.remove path with Sys_error _ -> ())

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "cluster"
    [
      ( "backoff",
        [
          Alcotest.test_case "spec grammar" `Quick test_backoff_spec;
          Alcotest.test_case "delay determinism and bounds" `Quick test_backoff_delay;
          Alcotest.test_case "retry driver" `Quick test_backoff_retry;
        ] );
      ( "detector",
        [
          Alcotest.test_case "transition table" `Quick test_detector_table;
          Alcotest.test_case "die and rejoin walk" `Quick test_detector_walk;
          Alcotest.test_case "config validation" `Quick test_detector_validate;
        ] );
      ( "delta codec",
        [
          Alcotest.test_case "roundtrip unit" `Quick test_delta_roundtrip_unit;
          Alcotest.test_case "rejects malformed" `Quick test_delta_rejects;
          QCheck_alcotest.to_alcotest prop_delta_roundtrip;
        ] );
      ( "dedup exactness",
        [
          Alcotest.test_case "fault spec grammar" `Quick test_fault_spec;
          Alcotest.test_case "idempotent apply" `Quick test_dedup_idempotent;
          QCheck_alcotest.to_alcotest prop_dedup_exact_under_faults;
          QCheck_alcotest.to_alcotest prop_deliveries_at_least_once;
        ] );
      ( "spool",
        [ Alcotest.test_case "epochs and replay" `Quick test_spool_epochs_and_replay ] );
      ( "aggregator",
        [ Alcotest.test_case "end to end" `Quick test_aggregator_e2e ] );
    ]
