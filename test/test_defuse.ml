(* Tests for def-use chains and dead-write (junk) detection. *)

open Sanids_x86
open Sanids_ir

let reg r = Insn.Reg r
let imm v = Insn.Imm v
let mov32 d s = Insn.Mov (Insn.S32bit, d, s)
let arith op d s = Insn.Arith (op, Insn.S32bit, d, s)

let trace_of insns = Trace.build (Encode.program insns) ~entry:0

let test_simple_chain () =
  (* 0: mov eax, 5       defines eax
     1: mov ebx, eax     reads eax (def at 0), defines ebx
     2: add ebx, 1       rmw ebx (def at 1)
     3: int3 *)
  let t =
    Defuse.analyze
      (trace_of
         [
           mov32 (reg Reg.EAX) (imm 5l);
           mov32 (reg Reg.EBX) (reg Reg.EAX);
           arith Insn.Add (reg Reg.EBX) (imm 1l);
           Insn.Int3;
         ])
  in
  Alcotest.(check bool) "mov ebx,eax reads eax from 0" true
    (List.mem (Reg.EAX, Defuse.At 0) (Defuse.reads t 1));
  Alcotest.(check bool) "add reads ebx from 1" true
    (List.mem (Reg.EBX, Defuse.At 1) (Defuse.reads t 2));
  Alcotest.(check (list int)) "uses of def at 0" [ 1 ] (Defuse.uses_of t 0);
  Alcotest.(check (list int)) "uses of def at 1" [ 2 ] (Defuse.uses_of t 1)

let test_entry_def () =
  let t = Defuse.analyze (trace_of [ mov32 (reg Reg.EBX) (reg Reg.ESI); Insn.Int3 ]) in
  Alcotest.(check bool) "esi live at entry" true
    (List.mem (Reg.ESI, Defuse.Entry) (Defuse.reads t 0))

let test_dead_write_detection () =
  (* 0: mov edx, 7     dead: overwritten at 2 without a read
     1: mov eax, 1     alive: read by the syscall
     2: mov edx, 9     alive: read by the syscall (int reads edx)
     3: int 0x80 *)
  let t =
    Defuse.analyze
      (trace_of
         [
           mov32 (reg Reg.EDX) (imm 7l);
           mov32 (reg Reg.EAX) (imm 1l);
           mov32 (reg Reg.EDX) (imm 9l);
           Insn.Int 0x80;
         ])
  in
  Alcotest.(check bool) "first edx write dead" true (Defuse.is_dead_write t 0);
  Alcotest.(check bool) "eax write alive" false (Defuse.is_dead_write t 1);
  Alcotest.(check bool) "second edx write alive" false (Defuse.is_dead_write t 2);
  Alcotest.(check (float 0.01)) "one of four dead" 0.25 (Defuse.dead_fraction t)

let test_side_effects_never_dead () =
  let t =
    Defuse.analyze
      (trace_of
         [
           mov32 (reg Reg.EDI) (imm 0x08048100l);
           mov32 (Insn.Mem (Insn.mem_base Reg.EDI)) (imm 5l);
           Insn.Push_imm 3l;
           Insn.Pop_reg Reg.ESI;
           Insn.Int3;
         ])
  in
  (* the store writes no register but has a memory side effect *)
  Alcotest.(check bool) "store not dead" false (Defuse.is_dead_write t 1);
  Alcotest.(check bool) "push not dead" false (Defuse.is_dead_write t 2)

let test_rmw_is_a_use () =
  (* inc consumes the previous value, so the initial write is alive even
     though nothing else reads it before the final overwrite *)
  let t =
    Defuse.analyze
      (trace_of
         [
           mov32 (reg Reg.EBX) (imm 1l);
           Insn.Inc (Insn.S32bit, reg Reg.EBX);
           mov32 (reg Reg.EBX) (imm 0l);
           Insn.Int3;
         ])
  in
  Alcotest.(check bool) "initial write used by inc" false (Defuse.is_dead_write t 0);
  (* the inc's own result is then clobbered: dead *)
  Alcotest.(check bool) "inc result dead" true (Defuse.is_dead_write t 1)

let test_junk_measurement_on_engine_output () =
  (* the dead-write fraction of heavily junked decoders exceeds that of
     junk-free ones: def-use sees the garbage from the outside *)
  let payload = (Sanids_exploits.Shellcodes.find "classic").Sanids_exploits.Shellcodes.code in
  let fraction junk seed =
    let rng = Rng.create seed in
    let g =
      Sanids_polymorph.Admmutate.generate ~family:Sanids_polymorph.Admmutate.Xor_loop
        ~junk ~out_of_order:false rng ~payload
    in
    let code = g.Sanids_polymorph.Admmutate.code in
    let trace = Trace.build code ~entry:g.Sanids_polymorph.Admmutate.sled_len in
    Defuse.dead_fraction (Defuse.analyze trace)
  in
  let avg f = (f 0xD1L +. f 0xD2L +. f 0xD3L) /. 3.0 in
  let clean = avg (fraction 0) in
  let junky = avg (fraction 12) in
  Alcotest.(check bool)
    (Printf.sprintf "junked decoders show more dead writes (%.2f > %.2f)" junky clean)
    true (junky > clean)

let test_index_bounds () =
  let t = Defuse.analyze (trace_of [ Insn.Nop ]) in
  match Defuse.reads t 5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected bounds check"

let () =
  Alcotest.run "defuse"
    [
      ( "chains",
        [
          Alcotest.test_case "simple chain" `Quick test_simple_chain;
          Alcotest.test_case "entry defs" `Quick test_entry_def;
          Alcotest.test_case "bounds" `Quick test_index_bounds;
        ] );
      ( "dead writes",
        [
          Alcotest.test_case "detection" `Quick test_dead_write_detection;
          Alcotest.test_case "side effects never dead" `Quick test_side_effects_never_dead;
          Alcotest.test_case "rmw is a use" `Quick test_rmw_is_a_use;
          Alcotest.test_case "junk measurement" `Quick test_junk_measurement_on_engine_output;
        ] );
    ]
