(* Unit and property tests for the utility substrate. *)

let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create 42L in
  let b = Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_copy_independent () =
  let a = Rng.create 7L in
  let _ = Rng.int64 a in
  let b = Rng.copy a in
  let va = Rng.int64 a in
  let vb = Rng.int64 b in
  Alcotest.(check int64) "copy continues the stream" va vb

let test_rng_split_differs () =
  let a = Rng.create 7L in
  let b = Rng.split a in
  let va = Rng.int64 a in
  let vb = Rng.int64 b in
  Alcotest.(check bool) "split decorrelates" true (va <> vb)

let test_rng_bounds () =
  let t = Rng.create 1L in
  for _ = 1 to 1000 do
    let v = Rng.int t 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done;
  for _ = 1 to 1000 do
    let v = Rng.int_in t (-5) 5 in
    Alcotest.(check bool) "int_in range" true (v >= -5 && v <= 5)
  done;
  for _ = 1 to 1000 do
    let v = Rng.byte t in
    Alcotest.(check bool) "byte range" true (v >= 0 && v <= 255)
  done

let test_rng_int_invalid () =
  let t = Rng.create 1L in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int t 0))

let test_rng_shuffle_permutation () =
  let t = Rng.create 99L in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle t a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_chance_extremes () =
  let t = Rng.create 3L in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never" false (Rng.chance t 0.0);
    Alcotest.(check bool) "p=1 always" true (Rng.chance t 1.0)
  done

let test_rng_bytes_length () =
  let t = Rng.create 5L in
  check_int "length" 1000 (String.length (Rng.bytes t 1000))

(* ------------------------------------------------------------------ *)
(* Byte_io *)

let test_reader_be_le () =
  let r = Byte_io.Reader.of_string "\x01\x02\x03\x04" in
  check_int "u16_be" 0x0102 (Byte_io.Reader.u16_be r);
  Byte_io.Reader.seek r 0;
  check_int "u16_le" 0x0201 (Byte_io.Reader.u16_le r);
  Byte_io.Reader.seek r 0;
  check_int "u32_be" 0x01020304 (Byte_io.Reader.u32_be_int r);
  Byte_io.Reader.seek r 0;
  check_int "u32_le" 0x04030201 (Byte_io.Reader.u32_le_int r)

let test_reader_truncation () =
  let r = Byte_io.Reader.of_string "\x01" in
  Alcotest.check_raises "u16 past end" (Byte_io.Truncated "u8") (fun () ->
      ignore (Byte_io.Reader.u16_be r))

let test_reader_view () =
  let r = Byte_io.Reader.of_string ~pos:2 ~len:3 "abcdefg" in
  check_string "windowed take" "cde" (Byte_io.Reader.take r 3);
  Alcotest.(check bool) "empty after" true (Byte_io.Reader.is_empty r)

let test_writer_roundtrip () =
  let w = Byte_io.Writer.create () in
  Byte_io.Writer.u8 w 0xAB;
  Byte_io.Writer.u16_be w 0x0102;
  Byte_io.Writer.u32_le w 0x11223344l;
  Byte_io.Writer.string w "xy";
  let s = Byte_io.Writer.contents w in
  let r = Byte_io.Reader.of_string s in
  check_int "u8" 0xAB (Byte_io.Reader.u8 r);
  check_int "u16" 0x0102 (Byte_io.Reader.u16_be r);
  check_int "u32" 0x11223344 (Byte_io.Reader.u32_le_int r);
  check_string "tail" "xy" (Byte_io.Reader.rest r)

let test_writer_patch () =
  let w = Byte_io.Writer.create () in
  Byte_io.Writer.u16_be w 0;
  Byte_io.Writer.string w "abc";
  Byte_io.Writer.patch_u16_be w 0 0xBEEF;
  let s = Byte_io.Writer.contents w in
  check_int "patched" 0xBE (Char.code s.[0]);
  check_int "patched lo" 0xEF (Char.code s.[1]);
  check_string "rest intact" "abc" (String.sub s 2 3)

let test_writer_fill () =
  let w = Byte_io.Writer.create () in
  Byte_io.Writer.fill w 0x90 5;
  check_string "fill" "\x90\x90\x90\x90\x90" (Byte_io.Writer.contents w)

(* ------------------------------------------------------------------ *)
(* Hexdump *)

let test_hex_roundtrip () =
  check_string "encode" "9048cd80" (Hexdump.encode "\x90\x48\xcd\x80");
  check_string "decode" "\x90\x48\xcd\x80" (Hexdump.decode "9048cd80");
  check_string "decode spaces" "\x90\x48" (Hexdump.decode "90 48");
  check_string "decode upper" "\xAB" (Hexdump.decode "AB")

let test_hex_invalid () =
  Alcotest.check_raises "odd digits"
    (Invalid_argument "Hexdump.decode: odd number of hex digits") (fun () ->
      ignore (Hexdump.decode "abc"))

let test_of_ints () =
  check_string "of_ints" "\x01\xff" (Hexdump.of_ints [ 1; 255 ])

let test_dump_format () =
  let d = Hexdump.to_string "ABC" in
  Alcotest.(check bool) "has offset" true
    (String.length d > 8 && String.sub d 0 8 = "00000000");
  Alcotest.(check bool) "has gutter" true (String.contains d '|')

(* ------------------------------------------------------------------ *)
(* Entropy *)

let test_entropy_extremes () =
  Alcotest.(check (float 1e-9)) "constant string" 0.0 (Entropy.shannon (String.make 100 'a'));
  let all = String.init 256 Char.chr in
  Alcotest.(check (float 1e-9)) "uniform 256" 8.0 (Entropy.shannon all);
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Entropy.shannon "")

let test_entropy_two_symbol () =
  let s = String.init 100 (fun i -> if i mod 2 = 0 then 'a' else 'b') in
  Alcotest.(check (float 1e-9)) "fair two-symbol = 1 bit" 1.0 (Entropy.shannon s)

let test_printable_fraction () =
  Alcotest.(check (float 1e-9)) "all printable" 1.0 (Entropy.printable_fraction "hello");
  Alcotest.(check (float 1e-9)) "none printable" 0.0
    (Entropy.printable_fraction "\x01\x02\x03");
  Alcotest.(check (float 1e-9)) "half" 0.5 (Entropy.printable_fraction "a\x01")

let test_histogram_total () =
  let h = Entropy.histogram "aab" in
  check_int "a count" 2 h.(Char.code 'a');
  check_int "b count" 1 h.(Char.code 'b');
  check_int "total" 3 (Array.fold_left ( + ) 0 h)

let test_chi_square_self () =
  let s = "the quick brown fox jumps over the lazy dog" in
  let h = Entropy.histogram s in
  let p = Entropy.normalize h in
  let v = Entropy.chi_square ~observed:h ~expected:p in
  Alcotest.(check bool) "self distance near zero" true (v < 1e-6)

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_hex_roundtrip =
  QCheck2.Test.make ~name:"hexdump decode∘encode = id" ~count:500
    QCheck2.Gen.(string_size (int_bound 200))
    (fun s -> Hexdump.decode (Hexdump.encode s) = s)

let prop_entropy_bounds =
  QCheck2.Test.make ~name:"entropy in [0,8]" ~count:500
    QCheck2.Gen.(string_size (int_bound 300))
    (fun s ->
      let e = Entropy.shannon s in
      e >= 0.0 && e <= 8.0 +. 1e-9)

let prop_rng_int_uniformish =
  QCheck2.Test.make ~name:"rng int stays in bound" ~count:200
    QCheck2.Gen.(pair int64 (int_range 1 1000))
    (fun (seed, bound) ->
      let t = Rng.create seed in
      let ok = ref true in
      for _ = 1 to 50 do
        let v = Rng.int t bound in
        if v < 0 || v >= bound then ok := false
      done;
      !ok)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [ prop_hex_roundtrip; prop_entropy_bounds; prop_rng_int_uniformish ]

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "copy independent" `Quick test_rng_copy_independent;
          Alcotest.test_case "split differs" `Quick test_rng_split_differs;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "invalid bound" `Quick test_rng_int_invalid;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "chance extremes" `Quick test_rng_chance_extremes;
          Alcotest.test_case "bytes length" `Quick test_rng_bytes_length;
        ] );
      ( "byte_io",
        [
          Alcotest.test_case "endianness" `Quick test_reader_be_le;
          Alcotest.test_case "truncation" `Quick test_reader_truncation;
          Alcotest.test_case "view" `Quick test_reader_view;
          Alcotest.test_case "writer roundtrip" `Quick test_writer_roundtrip;
          Alcotest.test_case "patch" `Quick test_writer_patch;
          Alcotest.test_case "fill" `Quick test_writer_fill;
        ] );
      ( "hexdump",
        [
          Alcotest.test_case "roundtrip" `Quick test_hex_roundtrip;
          Alcotest.test_case "invalid" `Quick test_hex_invalid;
          Alcotest.test_case "of_ints" `Quick test_of_ints;
          Alcotest.test_case "dump format" `Quick test_dump_format;
        ] );
      ( "entropy",
        [
          Alcotest.test_case "extremes" `Quick test_entropy_extremes;
          Alcotest.test_case "two symbol" `Quick test_entropy_two_symbol;
          Alcotest.test_case "printable fraction" `Quick test_printable_fraction;
          Alcotest.test_case "histogram" `Quick test_histogram_total;
          Alcotest.test_case "chi-square self" `Quick test_chi_square_self;
        ] );
      ("properties", properties);
    ]
