(* Tests for the network substrate: addresses, codecs, flows, pcap. *)

open Sanids_net

let ip = Ipaddr.of_string

let test_ipaddr_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) s s (Ipaddr.to_string (ip s)))
    [ "0.0.0.0"; "10.1.2.3"; "192.168.255.1"; "255.255.255.255" ]

let test_ipaddr_invalid () =
  List.iter
    (fun s ->
      Alcotest.(check (option reject)) s None
        (Option.map (fun _ -> ()) (Ipaddr.of_string_opt s)))
    [ ""; "1.2.3"; "1.2.3.4.5"; "256.1.1.1"; "a.b.c.d"; "1..2.3" ]

let test_prefix_mem () =
  let p = Ipaddr.prefix_of_string "192.168.0.0/16" in
  Alcotest.(check bool) "inside" true (Ipaddr.mem (ip "192.168.31.7") p);
  Alcotest.(check bool) "outside" false (Ipaddr.mem (ip "192.169.0.1") p);
  Alcotest.(check bool) "base" true (Ipaddr.mem (ip "192.168.0.0") p);
  let p0 = Ipaddr.prefix (ip "1.2.3.4") 0 in
  Alcotest.(check bool) "len 0 covers all" true (Ipaddr.mem (ip "9.9.9.9") p0);
  let p32 = Ipaddr.prefix (ip "10.0.0.1") 32 in
  Alcotest.(check bool) "len 32 exact" true (Ipaddr.mem (ip "10.0.0.1") p32);
  Alcotest.(check bool) "len 32 other" false (Ipaddr.mem (ip "10.0.0.2") p32)

let test_prefix_nth () =
  let p = Ipaddr.prefix_of_string "10.0.0.0/24" in
  Alcotest.(check string) "nth 5" "10.0.0.5" (Ipaddr.to_string (Ipaddr.nth p 5));
  Alcotest.(check int) "size" 256 (Ipaddr.prefix_size p)

let test_unsigned_compare () =
  (* 200.0.0.0 must compare above 100.0.0.0 despite the sign bit *)
  Alcotest.(check bool) "unsigned order" true
    (Ipaddr.compare (ip "200.0.0.0") (ip "100.0.0.0") > 0)

let test_checksum_known () =
  (* RFC 1071 example: 00 01 f2 03 f4 f5 f6 f7 -> checksum 0x220d *)
  Alcotest.(check int) "rfc1071" 0x220D
    (Checksum.ones_complement "\x00\x01\xf2\x03\xf4\xf5\xf6\xf7")

let a = ip "10.0.0.1"
let b = ip "10.0.0.2"

let test_ipv4_roundtrip () =
  let t =
    { Ipv4.src = a; dst = b; proto = 6; ttl = 63; ident = 77;
      payload = Slice.of_string "hello" }
  in
  match Ipv4.decode (Slice.of_string (Ipv4.encode t)) with
  | Ok t' ->
      Alcotest.(check string) "payload" "hello" (Slice.to_string t'.Ipv4.payload);
      Alcotest.(check bool) "src" true (Ipaddr.equal t'.Ipv4.src a);
      Alcotest.(check int) "ttl" 63 t'.Ipv4.ttl;
      Alcotest.(check int) "ident" 77 t'.Ipv4.ident
  | Error e -> Alcotest.failf "decode failed: %s" e

let test_ipv4_corrupt_checksum () =
  let raw =
    Bytes.of_string
      (Ipv4.encode
         { Ipv4.src = a; dst = b; proto = 6; ttl = 1; ident = 0; payload = Slice.empty })
  in
  Bytes.set raw 8 '\xFF';
  (* ttl tampered *)
  match Ipv4.decode (Slice.of_string (Bytes.to_string raw)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "tampered header must not decode"

let test_tcp_roundtrip () =
  let seg =
    {
      Tcp.src_port = 3127;
      dst_port = 80;
      seq = 0xDEAD0000l;
      ack_no = 5l;
      flags = Tcp.flags_pshack;
      window = 1024;
      payload = Slice.of_string "GET / HTTP/1.0\r\n\r\n";
    }
  in
  match Tcp.decode ~src:a ~dst:b (Slice.of_string (Tcp.encode ~src:a ~dst:b seg)) with
  | Ok seg' ->
      Alcotest.(check int) "sport" 3127 seg'.Tcp.src_port;
      Alcotest.(check string) "payload"
        (Slice.to_string seg.Tcp.payload)
        (Slice.to_string seg'.Tcp.payload);
      Alcotest.(check bool) "flags" true (seg'.Tcp.flags = Tcp.flags_pshack)
  | Error e -> Alcotest.failf "tcp decode: %s" e

let test_tcp_wrong_pseudo_header () =
  let seg =
    {
      Tcp.src_port = 1; dst_port = 2; seq = 0l; ack_no = 0l;
      flags = Tcp.flags_ack; window = 1; payload = Slice.of_string "x";
    }
  in
  let bytes = Slice.of_string (Tcp.encode ~src:a ~dst:b seg) in
  (* decoding against a different address must fail the checksum (note:
     merely swapping src and dst would NOT change a one's-complement sum,
     which is commutative over the pseudo-header words) *)
  match Tcp.decode ~src:(ip "10.9.9.9") ~dst:b bytes with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "checksum must bind addresses"

let test_udp_roundtrip () =
  let d = { Udp.src_port = 5353; dst_port = 53; payload = Slice.of_string "query" } in
  match Udp.decode ~src:a ~dst:b (Slice.of_string (Udp.encode ~src:a ~dst:b d)) with
  | Ok d' -> Alcotest.(check string) "payload" "query" (Slice.to_string d'.Udp.payload)
  | Error e -> Alcotest.failf "udp decode: %s" e

let test_packet_roundtrip () =
  let p =
    Packet.build_tcp ~ts:1.5 ~src:a ~dst:b ~src_port:1234 ~dst_port:80 "payload!"
  in
  match Packet.parse ~ts:1.5 (Packet.to_bytes p) with
  | Ok p' ->
      Alcotest.(check string) "payload" "payload!" (Packet.payload_string p');
      Alcotest.(check (option (pair int int))) "ports" (Some (1234, 80)) (Packet.ports p')
  | Error e -> Alcotest.failf "packet parse: %s" e

let test_flow_reassembly () =
  let r = Flow.create_reassembler () in
  let seg seq payload =
    Packet.build_tcp ~ts:0.0 ~src:a ~dst:b ~src_port:99 ~dst_port:80 ~seq payload
  in
  (* in-order, then a gap, then the gap fills *)
  Alcotest.(check (option string)) "first" (Some "hello ") (Flow.push r (seg 1000l "hello "));
  Alcotest.(check (option string)) "gap buffered" None (Flow.push r (seg 1011l "!"));
  Alcotest.(check (option string)) "gap filled" (Some "hello world!")
    (Flow.push r (seg 1006l "world"));
  Alcotest.(check int) "one flow" 1 (Flow.flow_count r)

let test_flow_duplicate_ignored () =
  let r = Flow.create_reassembler () in
  let seg seq payload =
    Packet.build_tcp ~ts:0.0 ~src:a ~dst:b ~src_port:99 ~dst_port:80 ~seq payload
  in
  ignore (Flow.push r (seg 2000l "abc"));
  Alcotest.(check (option string)) "dup dropped" None (Flow.push r (seg 2000l "abc"))

let test_pcap_roundtrip () =
  let pkts =
    [
      Packet.build_tcp ~ts:0.25 ~src:a ~dst:b ~src_port:1 ~dst_port:2 "one";
      Packet.build_udp ~ts:1.75 ~src:b ~dst:a ~src_port:3 ~dst_port:4 "two";
    ]
  in
  let f =
    match Sanids_pcap.Pcap.decode (Sanids_pcap.Pcap.encode (Sanids_pcap.Pcap.of_packets pkts)) with
    | Ok f -> f
    | Error m -> Alcotest.failf "decode: %s" m
  in
  Alcotest.(check int) "linktype" Sanids_pcap.Pcap.linktype_raw f.Sanids_pcap.Pcap.linktype;
  match Sanids_pcap.Pcap.to_packets f with
  | [ Ok p1; Ok p2 ] ->
      Alcotest.(check string) "p1" "one" (Packet.payload_string p1);
      Alcotest.(check string) "p2" "two" (Packet.payload_string p2);
      Alcotest.(check (float 0.001)) "ts" 1.75 p2.Packet.ts
  | _ -> Alcotest.fail "expected two parsed packets"

let test_pcap_bad_magic () =
  (match Sanids_pcap.Pcap.decode (String.make 40 'z') with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected a decode error");
  match Sanids_pcap.Pcap.decode_exn (String.make 40 'z') with
  | exception Sanids_pcap.Pcap.Malformed _ -> ()
  | _ -> Alcotest.fail "expected Malformed"

let test_pcap_file_io () =
  let path = Filename.temp_file "sanids" ".pcap" in
  let pkts = [ Packet.build_tcp ~ts:3.5 ~src:a ~dst:b ~src_port:5 ~dst_port:6 "disk" ] in
  Sanids_pcap.Pcap.write_file path (Sanids_pcap.Pcap.of_packets pkts);
  let f = Sanids_pcap.Pcap.read_file path in
  Sys.remove path;
  Alcotest.(check int) "one record" 1 (List.length f.Sanids_pcap.Pcap.records)

(* property: arbitrary payloads round-trip through TCP packets *)
let prop_packet_roundtrip =
  QCheck2.Test.make ~name:"packet encode/parse roundtrip" ~count:300
    QCheck2.Gen.(string_size (int_bound 1200))
    (fun payload ->
      let p = Packet.build_tcp ~ts:0.0 ~src:a ~dst:b ~src_port:10 ~dst_port:20 payload in
      match Packet.parse ~ts:0.0 (Packet.to_bytes p) with
      | Ok p' -> Slice.equal_string (Packet.payload p') payload
      | Error _ -> false)

let prop_checksum_detects_flip =
  QCheck2.Test.make ~name:"single byte flip breaks ipv4 decode or payload differs" ~count:200
    QCheck2.Gen.(pair (string_size (int_range 1 100)) (int_bound 10000))
    (fun (payload, flip) ->
      let raw =
        Ipv4.encode
          { Ipv4.src = a; dst = b; proto = 200; ttl = 9; ident = 1;
            payload = Slice.of_string payload }
      in
      let pos = flip mod min 20 (String.length raw) in
      let bytes = Bytes.of_string raw in
      Bytes.set bytes pos (Char.chr (Char.code (Bytes.get bytes pos) lxor 0x5A));
      match Ipv4.decode (Slice.of_string (Bytes.to_string bytes)) with
      | Error _ -> true
      | Ok t ->
          (* flips that survive decoding must not masquerade as intact:
             only flips that keep the checksum valid would, which a single
             bit flip cannot *)
          not (Slice.equal_string t.Ipv4.payload payload) || false)

let test_ethernet_mac () =
  let m = Ethernet.mac_of_string "aa:bb:cc:00:11:ff" in
  Alcotest.(check string) "roundtrip" "aa:bb:cc:00:11:ff" (Ethernet.mac_to_string m);
  Alcotest.(check bool) "bad mac is None" true
    (Ethernet.mac_of_string_opt "nonsense" = None);
  Alcotest.(check bool) "good mac parses" true
    (Ethernet.mac_of_string_opt "02:00:00:00:00:01" <> None);
  Alcotest.(check bool) "broadcast differs" false
    (Ethernet.mac_equal m Ethernet.mac_broadcast)

let test_ethernet_frame_roundtrip () =
  let t =
    {
      Ethernet.dst = Ethernet.mac_broadcast;
      src = Ethernet.mac_of_string "02:00:00:00:00:09";
      ethertype = Ethernet.ethertype_ipv4;
      payload = Slice.of_string "datagram-bytes";
    }
  in
  match Ethernet.decode (Slice.of_string (Ethernet.encode t)) with
  | Ok t' ->
      Alcotest.(check string) "payload" "datagram-bytes"
        (Slice.to_string t'.Ethernet.payload);
      Alcotest.(check int) "ethertype" Ethernet.ethertype_ipv4 t'.Ethernet.ethertype;
      Alcotest.(check bool) "dst" true (Ethernet.mac_equal t'.Ethernet.dst Ethernet.mac_broadcast)
  | Error e -> Alcotest.failf "decode: %s" e

let test_ethernet_short_frame () =
  match Ethernet.decode (Slice.of_string "short") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "short frame must not decode"

let test_pcap_ethernet_linktype () =
  let pkts =
    [ Packet.build_tcp ~ts:0.5 ~src:a ~dst:b ~src_port:7 ~dst_port:8 "framed" ]
  in
  let bytes =
    Sanids_pcap.Pcap.encode ~linktype:Sanids_pcap.Pcap.linktype_ethernet
      (Sanids_pcap.Pcap.of_packets_ethernet pkts)
  in
  let f =
    match Sanids_pcap.Pcap.decode bytes with
    | Ok f -> f
    | Error m -> Alcotest.failf "decode: %s" m
  in
  Alcotest.(check int) "linktype" Sanids_pcap.Pcap.linktype_ethernet
    f.Sanids_pcap.Pcap.linktype;
  match Sanids_pcap.Pcap.to_packets f with
  | [ Ok p ] ->
      Alcotest.(check string) "payload through framing" "framed" (Packet.payload_string p)
  | _ -> Alcotest.fail "expected one parsed packet"

let properties =
  List.map QCheck_alcotest.to_alcotest [ prop_packet_roundtrip; prop_checksum_detects_flip ]

let () =
  Alcotest.run "net"
    [
      ( "ipaddr",
        [
          Alcotest.test_case "roundtrip" `Quick test_ipaddr_roundtrip;
          Alcotest.test_case "invalid" `Quick test_ipaddr_invalid;
          Alcotest.test_case "prefix membership" `Quick test_prefix_mem;
          Alcotest.test_case "prefix nth" `Quick test_prefix_nth;
          Alcotest.test_case "unsigned compare" `Quick test_unsigned_compare;
        ] );
      ( "codecs",
        [
          Alcotest.test_case "checksum rfc1071" `Quick test_checksum_known;
          Alcotest.test_case "ipv4 roundtrip" `Quick test_ipv4_roundtrip;
          Alcotest.test_case "ipv4 corrupt" `Quick test_ipv4_corrupt_checksum;
          Alcotest.test_case "tcp roundtrip" `Quick test_tcp_roundtrip;
          Alcotest.test_case "tcp pseudo header" `Quick test_tcp_wrong_pseudo_header;
          Alcotest.test_case "udp roundtrip" `Quick test_udp_roundtrip;
          Alcotest.test_case "packet roundtrip" `Quick test_packet_roundtrip;
        ] );
      ( "flow",
        [
          Alcotest.test_case "reassembly" `Quick test_flow_reassembly;
          Alcotest.test_case "duplicates" `Quick test_flow_duplicate_ignored;
        ] );
      ( "ethernet",
        [
          Alcotest.test_case "mac parsing" `Quick test_ethernet_mac;
          Alcotest.test_case "frame roundtrip" `Quick test_ethernet_frame_roundtrip;
          Alcotest.test_case "short frame" `Quick test_ethernet_short_frame;
        ] );
      ( "pcap",
        [
          Alcotest.test_case "roundtrip" `Quick test_pcap_roundtrip;
          Alcotest.test_case "bad magic" `Quick test_pcap_bad_magic;
          Alcotest.test_case "file io" `Quick test_pcap_file_io;
          Alcotest.test_case "ethernet linktype" `Quick test_pcap_ethernet_linktype;
        ] );
      ("properties", properties);
    ]
