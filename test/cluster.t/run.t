The federated cluster end to end: sensors shipping snapshot deltas
at-least-once over a faulted channel, the aggregator's dedup keeping
the cluster view exact, crash recovery through the spool, failure
detection, and a cluster-wide reconciliation that balances to the
packet.

Shard the outbreak across sensors:

  $ sanids gen-trace shard-a.pcap --kind codered --packets 120 --seed 7
  ground truth: 141 packets, 3 CRII instances, 18 scans (unused space: 10.2.200.0/21)
  wrote shard-a.pcap (141 packets)
  $ sanids gen-trace shard-b.pcap --kind codered --packets 120 --seed 8
  ground truth: 141 packets, 3 CRII instances, 18 scans (unused space: 10.2.200.0/21)
  wrote shard-b.pcap (141 packets)

A sensor that cannot reach its aggregator fails fast with the typed
unavailable exit instead of serving into the void; ctl against a dead
endpoint does the same:

  $ sanids sensor shard-a.pcap --id x --aggregator-socket nowhere.sock --spool spool-x --connect-timeout 0.5
  sanids sensor: aggregator unreachable: connect: No such file or directory
  [69]
  $ sanids ctl health --socket nowhere.sock --timeout 0.5
  sanids ctl: connect: No such file or directory
  [69]

Start the aggregator (thresholds high enough that nothing goes suspect
during the drill):

  $ sanids aggregate --socket agg.sock --suspect-after 3600 --dead-after 7200 --tick-every 0.05 > agg.log 2>&1 &

Sensor a ships over a clean channel; sensor b's deliveries are
duplicated and reordered by a seeded channel fault.  The view must
stay exact anyway — that is the at-least-once + dedup contract:

  $ sanids sensor shard-a.pcap --id a --aggregator-socket agg.sock --spool spool-a --ship-every 60 --domains 2 > a.log 2>&1
  $ grep '^sensor a:' a.log
  sensor a: epoch=1 spool=spool-a
  sensor a: drained epoch=1 shipped=1
  $ sanids sensor shard-b.pcap --id b --aggregator-socket agg.sock --spool spool-b --ship-every 60 --domains 2 --channel-fault dup=0.5,reorder=0.3 --fault-seed 3 > b.log 2>&1
  $ grep '^sensor b:' b.log
  sensor b: epoch=1 spool=spool-b
  sensor b: drained epoch=1 shipped=1

Now the crash drill.  Sensor c's channel drops every delivery, so its
one drain delta stays journaled in the spool; SIGKILL it mid-flush:

  $ sanids sensor shard-a.pcap --id c --aggregator-socket agg.sock --spool spool-c --ship-every 60 --domains 2 --channel-fault drop=1.0 --fault-seed 3 > c1.log 2>&1 &
  $ pid=$!
  $ i=0; until [ -f spool-c/delta-00000001-00000001.delta ] || [ $i -ge 200 ]; do i=$((i+1)); sleep 0.1; done
  $ kill -KILL $pid
  $ wait $pid
  [137]
  $ ls spool-c
  EPOCH
  delta-00000001-00000001.delta

The respawn over the same spool bumps the epoch, replays the orphaned
delta losslessly, and ships its own shard on top:

  $ sanids sensor shard-b.pcap --id c --aggregator-socket agg.sock --spool spool-c --ship-every 60 --domains 2 > c2.log 2>&1
  $ grep '^sensor c:' c2.log
  sensor c: epoch=2 spool=spool-c
  sensor c: replayed=1
  sensor c: drained epoch=2 shipped=2
  $ ls spool-c
  EPOCH

The merged scrape shows the faulted channel's footprint — one
duplicate absorbed, four fresh deltas applied — and the exact view:

  $ sanids ctl metrics --socket agg.sock | grep '^sanids_cluster_deltas_total'
  sanids_cluster_deltas_total{outcome="duplicate"} 1
  sanids_cluster_deltas_total{outcome="fresh"} 4
  sanids_cluster_deltas_total{outcome="malformed"} 0
  $ sanids ctl metrics --socket agg.sock | grep -E '^sanids_(ingest_records_total|packets_total) '
  sanids_ingest_records_total 564
  sanids_packets_total 564

Drain the aggregator: per-sensor accounting (sensor c spans two
epochs) and a cluster-wide reconciliation that balances exactly —
564 records across four engine runs (sensor c's crashed incarnation
counts: its delta was journaled, not lost), no loss, no double count:

  $ sanids ctl drain --socket agg.sock
  draining
  $ wait
  $ grep '^aggregate: sensor=' agg.log
  aggregate: sensor=a state=alive
  aggregate: sensor=b state=alive
  aggregate: sensor=c state=alive
  aggregate: sensor=a state=alive epochs=1 applied=1 duplicates=0 last=1/1
  aggregate: sensor=b state=alive epochs=1 applied=1 duplicates=1 last=1/1
  aggregate: sensor=c state=alive epochs=2 applied=2 duplicates=0 last=2/1
  $ grep '^aggregate: cluster' agg.log
  aggregate: cluster records=564 verdicts=564 errors=0 shed=0 failed=0 reconciled
  $ awk '/^aggregate: cluster/{split($3,r,"=");split($4,v,"=");split($5,e,"=");split($6,s,"=");split($7,f,"=");bad=(r[2]!=v[2]+e[2]+s[2]+f[2])} END{exit bad}' agg.log

Failure detection, on a second aggregator with tight deadlines.  A
quiet sensor over a spool-directory source stays alive through
heartbeats alone; killing it walks Alive -> Suspect -> Dead on the
aggregator's clock, and the respawn walks Dead -> Rejoined -> Alive:

  $ mkdir live-spool
  $ sanids aggregate --socket fd.sock --suspect-after 0.3 --dead-after 0.6 --tick-every 0.1 > fd.log 2>&1 &
  $ sanids sensor live-spool --id d --aggregator-socket fd.sock --spool spool-d --heartbeat-every 0.1 --domains 2 > d1.log 2>&1 &
  $ pid=$!
  $ i=0; until sanids ctl metrics --socket fd.sock | grep -q 'sanids_cluster_sensors{state="alive"} 1' || [ $i -ge 200 ]; do i=$((i+1)); sleep 0.1; done
  $ sanids ctl metrics --socket fd.sock | grep 'state="alive"'
  sanids_cluster_sensors{state="alive"} 1
  $ kill -KILL $pid
  $ wait $pid
  [137]
  $ i=0; until sanids ctl metrics --socket fd.sock | grep -q 'sanids_cluster_sensors{state="dead"} 1' || [ $i -ge 200 ]; do i=$((i+1)); sleep 0.1; done
  $ sanids ctl metrics --socket fd.sock | grep 'state="dead"'
  sanids_cluster_sensors{state="dead"} 1
  $ sanids sensor live-spool --id d --aggregator-socket fd.sock --spool spool-d --heartbeat-every 0.1 --domains 2 > d2.log 2>&1 &
  $ pid=$!
  $ i=0; until sanids ctl metrics --socket fd.sock | grep -q 'sanids_cluster_sensors{state="alive"} 1' || [ $i -ge 200 ]; do i=$((i+1)); sleep 0.1; done
  $ sanids ctl metrics --socket fd.sock | grep 'state="alive"'
  sanids_cluster_sensors{state="alive"} 1
  $ grep -c 'sensor=d state=rejoined' fd.log
  1

The respawned sensor drains gracefully on SIGTERM, and the detector
aggregator shuts down clean:

  $ kill -TERM $pid
  $ wait $pid
  $ sanids ctl drain --socket fd.sock
  draining
  $ wait
