(* Tests for control-flow graph recovery. *)

open Sanids_x86
open Sanids_ir

let i x = Asm.I x
let reg r = Insn.Reg r
let imm v = Insn.Imm v

let test_straight_line () =
  let code = Encode.program [ Insn.Nop; Insn.Nop; Insn.Ret ] in
  let g = Cfg.build code in
  Alcotest.(check int) "one block" 1 (Cfg.block_count g);
  match Cfg.blocks g with
  | [ b ] ->
      Alcotest.(check int) "starts at 0" 0 b.Cfg.start;
      Alcotest.(check int) "three insns" 3 (List.length b.Cfg.insns);
      Alcotest.(check bool) "returns" true (b.Cfg.terminator = Cfg.Return);
      Alcotest.(check (list int)) "no successors" [] (Cfg.successors g b)
  | _ -> Alcotest.fail "expected one block"

let test_diamond () =
  (* if/else: cmp; je L1; A; jmp L2; L1: B; L2: ret *)
  let code =
    Asm.assemble
      [
        i (Insn.Arith (Insn.Cmp, Insn.S32bit, reg Reg.EAX, imm 0l));
        Asm.Jcc (Insn.E, "else_");
        i (Insn.Mov (Insn.S32bit, reg Reg.EBX, imm 1l));
        Asm.Jmp "join";
        Asm.Label "else_";
        i (Insn.Mov (Insn.S32bit, reg Reg.EBX, imm 2l));
        Asm.Label "join";
        i Insn.Ret;
      ]
  in
  let g = Cfg.build code in
  Alcotest.(check int) "four blocks" 4 (Cfg.block_count g);
  (* entry has two successors *)
  (match Cfg.block_at g 0 with
  | Some b -> Alcotest.(check int) "branchy entry" 2 (List.length (Cfg.successors g b))
  | None -> Alcotest.fail "no entry block");
  Alcotest.(check (list (pair int int))) "no back edges" [] (Cfg.back_edges g)

let test_loop_back_edge () =
  let code =
    Asm.assemble
      [
        i (Insn.Mov (Insn.S32bit, reg Reg.ECX, imm 5l));
        Asm.Label "top";
        i (Insn.Arith (Insn.Add, Insn.S32bit, reg Reg.EAX, reg Reg.ECX));
        Asm.Loop_to "top";
        i Insn.Ret;
      ]
  in
  let g = Cfg.build code in
  match Cfg.back_edges g with
  | [ (_, target) ] -> Alcotest.(check int) "loops to top" 5 target
  | other -> Alcotest.failf "expected one back edge, got %d" (List.length other)

let test_figure_1c_structure () =
  (* the paper's out-of-order decoder: several blocks stitched by jmps,
     exactly one loop-closing back edge *)
  let code =
    Asm.assemble
      [
        Asm.Label "decode";
        i (Insn.Mov (Insn.S32bit, reg Reg.ECX, imm 0l));
        i (Insn.Inc (Insn.S32bit, reg Reg.ECX));
        i (Insn.Inc (Insn.S32bit, reg Reg.ECX));
        Asm.Jmp "one";
        Asm.Label "two";
        i (Insn.Arith (Insn.Add, Insn.S32bit, reg Reg.EAX, imm 1l));
        Asm.Jmp "three";
        Asm.Label "one";
        i (Insn.Mov (Insn.S32bit, reg Reg.EBX, imm 0x31l));
        i (Insn.Arith (Insn.Add, Insn.S32bit, reg Reg.EBX, imm 0x64l));
        i (Insn.Arith (Insn.Xor, Insn.S8bit, Insn.Mem (Insn.mem_base Reg.EAX), Insn.Reg8 Reg.BL));
        Asm.Jmp "two";
        Asm.Label "three";
        Asm.Loop_to "decode";
      ]
  in
  let g = Cfg.build code in
  Alcotest.(check bool) "several blocks" true (Cfg.block_count g >= 4);
  let back = Cfg.back_edges g in
  Alcotest.(check bool) "loop edge to offset 0" true
    (List.exists (fun (_, t) -> t = 0) back)

let test_call_edges () =
  let code =
    Asm.assemble
      [ Asm.Call "sub"; i Insn.Ret; Asm.Label "sub"; i Insn.Nop; i Insn.Ret ]
  in
  let g = Cfg.build code in
  match Cfg.block_at g 0 with
  | Some b -> (
      match b.Cfg.terminator with
      | Cfg.Call { target; return_to } ->
          Alcotest.(check int) "target" 6 target;
          Alcotest.(check int) "return site" 5 return_to;
          Alcotest.(check int) "two successors" 2 (List.length (Cfg.successors g b))
      | _ -> Alcotest.fail "expected call terminator")
  | None -> Alcotest.fail "no entry"

let test_out_of_region () =
  let code = Encode.program [ Insn.Jmp_rel 1000 ] in
  let g = Cfg.build code in
  match Cfg.blocks g with
  | [ b ] -> Alcotest.(check bool) "escapes" true (b.Cfg.terminator = Cfg.Out_of_region)
  | _ -> Alcotest.fail "expected one block"

let test_pp_smoke () =
  let code = Encode.program [ Insn.Nop; Insn.Ret ] in
  Alcotest.(check bool) "renders" true
    (String.length (Format.asprintf "%a" Cfg.pp (Cfg.build code)) > 0)

let prop_blocks_partition =
  QCheck2.Test.make ~name:"cfg blocks partition the sweep" ~count:200
    QCheck2.Gen.(string_size (int_range 1 300))
    (fun s ->
      let g = Cfg.build s in
      let total =
        List.fold_left
          (fun acc (b : Cfg.block) ->
            acc
            + List.fold_left (fun a (d : Decode.decoded) -> a + d.Decode.len) 0 b.Cfg.insns)
          0 (Cfg.blocks g)
      in
      total = String.length s)

let () =
  Alcotest.run "cfg"
    [
      ( "structure",
        [
          Alcotest.test_case "straight line" `Quick test_straight_line;
          Alcotest.test_case "diamond" `Quick test_diamond;
          Alcotest.test_case "loop back edge" `Quick test_loop_back_edge;
          Alcotest.test_case "figure 1c" `Quick test_figure_1c_structure;
          Alcotest.test_case "call edges" `Quick test_call_edges;
          Alcotest.test_case "out of region" `Quick test_out_of_region;
          Alcotest.test_case "pp" `Quick test_pp_smoke;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_blocks_partition ]);
    ]
