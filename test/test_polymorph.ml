(* Tests for the polymorphic engines and their interaction with the
   semantic matcher — the machinery behind Table 2. *)

open Sanids_x86
open Sanids_polymorph
open Sanids_semantic

(* a stand-in payload: the classic execve shellcode *)
let payload =
  Encode.program
    [
      Insn.Arith (Insn.Xor, Insn.S32bit, Insn.Reg Reg.EAX, Insn.Reg Reg.EAX);
      Insn.Push_reg Reg.EAX;
      Insn.Push_imm 0x68732f2fl;
      Insn.Push_imm 0x6e69622fl;
      Insn.Mov (Insn.S32bit, Insn.Reg Reg.EBX, Insn.Reg Reg.ESP);
      Insn.Mov (Insn.S8bit, Insn.Reg8 Reg.AL, Insn.Imm 11l);
      Insn.Int 0x80;
    ]

let detected templates code =
  List.exists (fun t -> Matcher.satisfies t code) templates

(* ------------------------------------------------------------------ *)

let test_xor_family_all_detected () =
  let rng = Rng.create 1001L in
  let missed = ref 0 in
  for _ = 1 to 100 do
    let g = Admmutate.generate ~family:Admmutate.Xor_loop rng ~payload in
    if not (detected Template_lib.xor_decrypt g.Admmutate.code) then incr missed
  done;
  Alcotest.(check int) "all xor decoders detected" 0 !missed

let test_alt_family_all_detected () =
  let rng = Rng.create 1002L in
  let missed = ref 0 in
  for _ = 1 to 100 do
    let g = Admmutate.generate ~family:Admmutate.Alt_chain rng ~payload in
    if not (detected Template_lib.alt_decoder g.Admmutate.code) then incr missed
  done;
  Alcotest.(check int) "all alt decoders detected" 0 !missed

let test_alt_family_evades_xor_template () =
  (* the 68% experiment: the xor template alone misses the second family *)
  let rng = Rng.create 1003L in
  let caught = ref 0 in
  for _ = 1 to 50 do
    let g = Admmutate.generate ~family:Admmutate.Alt_chain rng ~payload in
    if detected Template_lib.xor_decrypt g.Admmutate.code then incr caught
  done;
  Alcotest.(check bool) "xor template misses most alt decoders" true (!caught <= 5)

let test_full_set_catches_everything () =
  let rng = Rng.create 1004L in
  let missed = ref 0 in
  for _ = 1 to 100 do
    let g = Admmutate.generate rng ~payload in
    let ts = Template_lib.xor_decrypt @ Template_lib.alt_decoder in
    if not (detected ts g.Admmutate.code) then incr missed
  done;
  Alcotest.(check int) "both templates catch all instances" 0 !missed

let test_family_split () =
  let rng = Rng.create 1005L in
  let alt = ref 0 in
  for _ = 1 to 1000 do
    let g = Admmutate.generate rng ~payload in
    if g.Admmutate.family = Admmutate.Alt_chain then incr alt
  done;
  Alcotest.(check bool) "family split near 32% alt" true (!alt > 250 && !alt < 400)

let test_instances_differ () =
  let rng = Rng.create 1006L in
  let a = Admmutate.generate rng ~payload in
  let b = Admmutate.generate rng ~payload in
  Alcotest.(check bool) "polymorphic instances differ" true
    (a.Admmutate.code <> b.Admmutate.code)

let test_layout_fields () =
  let rng = Rng.create 1007L in
  let g = Admmutate.generate ~sled_len:32 rng ~payload in
  Alcotest.(check int) "sled length" 32 g.Admmutate.sled_len;
  Alcotest.(check int) "payload length" (String.length payload) g.Admmutate.payload_len;
  Alcotest.(check int) "total layout"
    (String.length g.Admmutate.code)
    (g.Admmutate.sled_len + g.Admmutate.decoder_len + g.Admmutate.payload_len);
  (* the sled region really is NOP-like bytes *)
  String.iter
    (fun c ->
      if not (Nops.is_nop_like_byte c) then Alcotest.fail "sled byte not NOP-like")
    (String.sub g.Admmutate.code 0 g.Admmutate.sled_len)

(* ------------------------------------------------------------------ *)

let test_clet_detected_and_shaped () =
  let rng = Rng.create 2001L in
  let missed = ref 0 in
  for _ = 1 to 100 do
    let g = Clet.generate rng ~payload in
    if not (detected Template_lib.xor_decrypt g.Clet.code) then incr missed
  done;
  Alcotest.(check int) "all clet instances detected" 0 !missed

let test_clet_shaping_reduces_distance () =
  let rng = Rng.create 2002L in
  let g = Clet.generate ~pad_factor:4.0 rng ~payload in
  let unshaped = Admmutate.generate ~family:Admmutate.Xor_loop rng ~payload in
  let dist code =
    Entropy.chi_square ~observed:(Entropy.histogram code)
      ~expected:Clet.english_profile
    /. float_of_int (String.length code)
  in
  Alcotest.(check bool) "shaped closer to english profile" true
    (dist g.Clet.code < dist unshaped.Admmutate.code)

(* ------------------------------------------------------------------ *)

let test_nops_sync_with_extractor () =
  (* every byte the NOP generator emits must be recognized by the
     extractor's sled heuristic *)
  let rng = Rng.create 3001L in
  let sled = Nops.sled_bytes rng 500 in
  let runs =
    Sanids_extract.Repetition.sled_like ~min_len:400 (Slice.of_string sled)
  in
  Alcotest.(check int) "one full run" 1 (List.length runs)

let test_junk_avoids_live_regs () =
  let rng = Rng.create 3002L in
  let live = [ Reg.EAX; Reg.ECX; Reg.ESI ] in
  for _ = 1 to 200 do
    let items = Junk.items rng ~live 10 in
    let code = Asm.assemble items in
    Array.iter
      (fun (d : Decode.decoded) ->
        List.iter
          (fun sem ->
            List.iter
              (fun w ->
                if List.exists (Reg.equal w) live then
                  Alcotest.failf "junk wrote live register %s in %s" (Reg.name w)
                    (Pretty.to_string d.Decode.insn))
              (Sanids_ir.Sem.writes sem))
          (Sanids_ir.Sem.lift d.Decode.insn))
      (Decode.all code)
  done

let test_junk_is_decodable () =
  let rng = Rng.create 3003L in
  for _ = 1 to 100 do
    let code = Asm.assemble (Junk.items rng ~live:[] 12) in
    Array.iter
      (fun (d : Decode.decoded) ->
        match d.Decode.insn with
        | Insn.Bad b -> Alcotest.failf "junk emitted undecodable byte 0x%02x" b
        | _ -> ())
      (Decode.all code)
  done

let test_const_route_folds () =
  let rng = Rng.create 3004L in
  for _ = 1 to 300 do
    let v = Int32.of_int (Rng.int rng 0x1000000) in
    let r = Rng.pick rng [| Reg.EAX; Reg.EBX; Reg.ECX; Reg.EDX; Reg.ESI |] in
    let code = Asm.assemble (Junk.const_route rng r v) in
    let state =
      Array.fold_left
        (fun st (d : Decode.decoded) -> Sanids_ir.Constprop.step_insn st d.Decode.insn)
        Sanids_ir.Constprop.initial (Decode.all code)
    in
    Alcotest.(check (option int32))
      "route folds to the constant" (Some v)
      (Sanids_ir.Constprop.reg32 state r)
  done

(* ------------------------------------------------------------------ *)
(* metamorphism (paper section 3): rewriting the program text itself *)

let test_metamorph_preserves_behaviour () =
  let rng = Rng.create 4001L in
  for _ = 1 to 40 do
    let mutant = Metamorph.mutate_code rng payload in
    (* still the same behaviour to the semantic analyzer *)
    if not (detected Template_lib.shell_spawn mutant) then
      Alcotest.fail "mutant must still satisfy shell-spawn";
    (* and concretely: runs to execve with EAX = 11 *)
    let emu = Emulator.create ~code:mutant () in
    match Emulator.run ~max_steps:20_000 emu with
    | Emulator.Syscall 0x80, _ ->
        Alcotest.(check int32) "execve" 11l
          (Int32.logand (Emulator.reg emu Reg.EAX) 0xFFl)
    | Emulator.Halted m, _ -> Alcotest.failf "mutant crashed: %s" m
    | _, _ -> Alcotest.fail "mutant never reached its syscall"
  done

let test_metamorph_evades_signatures () =
  let rng = Rng.create 4002L in
  let evasions = ref 0 in
  let total = 50 in
  for _ = 1 to total do
    let mutant = Metamorph.mutate_code rng payload in
    if Sanids_baseline.Signatures.scan mutant = None then incr evasions
  done;
  Alcotest.(check bool)
    (Printf.sprintf "most mutants evade signatures (%d/%d)" !evasions total)
    true
    (!evasions > total / 2)

let test_metamorph_rejects_branches () =
  let rng = Rng.create 4003L in
  let looping =
    [ Insn.Nop; Insn.Jmp_rel (-3) ]
  in
  match Metamorph.mutate rng looping with
  | exception Metamorph.Has_branches -> ()
  | _ -> Alcotest.fail "expected Has_branches"

let test_metamorph_mutants_differ () =
  let rng = Rng.create 4004L in
  let a = Metamorph.mutate_code rng payload in
  let b = Metamorph.mutate_code rng payload in
  Alcotest.(check bool) "mutants differ from each other" true (a <> b);
  Alcotest.(check bool) "mutants differ from original" true (a <> payload)

(* ------------------------------------------------------------------ *)

let prop_chain_invertible =
  QCheck2.Test.make ~name:"alt-chain encode/decode inverts" ~count:300
    QCheck2.Gen.(pair (string_size (int_range 1 100)) int64)
    (fun (s, seed) ->
      let rng = Rng.create seed in
      let g = Admmutate.generate ~family:Admmutate.Alt_chain rng ~payload:s in
      (* decoding is exercised semantically by the emulator tests; here we
         check the payload is present in encoded form, not in the clear,
         unless the chain degenerated to identity *)
      String.length g.Admmutate.code > String.length s)

let prop_xor_payload_hidden =
  QCheck2.Test.make ~name:"xor engine hides the payload bytes" ~count:100
    QCheck2.Gen.int64
    (fun seed ->
      let rng = Rng.create seed in
      let g = Admmutate.generate ~family:Admmutate.Xor_loop rng ~payload in
      let enc =
        String.sub g.Admmutate.code g.Admmutate.payload_off g.Admmutate.payload_len
      in
      enc <> payload)

let properties =
  List.map QCheck_alcotest.to_alcotest [ prop_chain_invertible; prop_xor_payload_hidden ]

let () =
  Alcotest.run "polymorph"
    [
      ( "admmutate",
        [
          Alcotest.test_case "xor family detected" `Quick test_xor_family_all_detected;
          Alcotest.test_case "alt family detected" `Quick test_alt_family_all_detected;
          Alcotest.test_case "alt evades xor template" `Quick
            test_alt_family_evades_xor_template;
          Alcotest.test_case "full set catches all" `Quick test_full_set_catches_everything;
          Alcotest.test_case "family split" `Quick test_family_split;
          Alcotest.test_case "instances differ" `Quick test_instances_differ;
          Alcotest.test_case "layout fields" `Quick test_layout_fields;
        ] );
      ( "clet",
        [
          Alcotest.test_case "detected" `Quick test_clet_detected_and_shaped;
          Alcotest.test_case "spectrum shaping" `Quick test_clet_shaping_reduces_distance;
        ] );
      ( "metamorph",
        [
          Alcotest.test_case "behaviour preserved" `Quick test_metamorph_preserves_behaviour;
          Alcotest.test_case "evades signatures" `Quick test_metamorph_evades_signatures;
          Alcotest.test_case "rejects branches" `Quick test_metamorph_rejects_branches;
          Alcotest.test_case "mutants differ" `Quick test_metamorph_mutants_differ;
        ] );
      ( "building blocks",
        [
          Alcotest.test_case "nops sync with extractor" `Quick test_nops_sync_with_extractor;
          Alcotest.test_case "junk avoids live regs" `Quick test_junk_avoids_live_regs;
          Alcotest.test_case "junk decodable" `Quick test_junk_is_decodable;
          Alcotest.test_case "const routes fold" `Quick test_const_route_folds;
        ] );
      ("properties", properties);
    ]
