(* The abstract-interpretation layer and the static-refutation
   pre-stage: value-domain unit pins, a qcheck over-approximation
   oracle against the validated emulator, the must-refute soundness
   oracle against the concrete confirmer, and the corpora regressions
   (decoys statically refuted; true decoders always left to the
   emulator). *)

module Insn = Sanids_x86.Insn
module Reg = Sanids_x86.Reg
module Encode = Sanids_x86.Encode
module Emulator = Sanids_x86.Emulator
module Absint = Sanids_ir.Absint
module Cfg = Sanids_ir.Cfg
module V = Sanids_ir.Absint.V
module Confirm = Sanids_confirm.Confirm
module Static_refute = Sanids_confirm.Static_refute
module Admmutate = Sanids_polymorph.Admmutate
module Clet = Sanids_polymorph.Clet
module Shellcodes = Sanids_exploits.Shellcodes
module Adversarial = Sanids_workload.Adversarial

let shellcode = (Shellcodes.find "classic").Shellcodes.code

(* ------------------------------------------------------------------ *)
(* V: the interval × congruence × taint domain *)

let test_v_consts () =
  let c = V.const in
  Alcotest.(check (option int32)) "add" (Some 5l) (V.is_const (V.add (c 2l) (c 3l)));
  Alcotest.(check (option int32)) "sub wraps" (Some 0xFFFFFFFFl)
    (V.is_const (V.sub (c 2l) (c 3l)));
  Alcotest.(check (option int32)) "xor" (Some 6l) (V.is_const (V.logxor (c 5l) (c 3l)));
  Alcotest.(check (option int32)) "and" (Some 1l) (V.is_const (V.logand (c 5l) (c 3l)));
  Alcotest.(check (option int32)) "or" (Some 7l) (V.is_const (V.logor (c 5l) (c 3l)));
  Alcotest.(check (option int32)) "not" (Some 0xFFFFFFFAl) (V.is_const (V.lognot (c 5l)));
  Alcotest.(check (option int32)) "neg" (Some 0xFFFFFFFBl) (V.is_const (V.neg (c 5l)));
  Alcotest.(check (option int32)) "mul" (Some 15l) (V.is_const (V.mul (c 5l) (c 3l)));
  Alcotest.(check (option int32)) "shl" (Some 40l) (V.is_const (V.shift Insn.Shl (c 5l) 3));
  Alcotest.(check (option int32)) "shr" (Some 1l) (V.is_const (V.shift Insn.Shr (c 5l) 2));
  Alcotest.(check (option int32)) "sar of negative" (Some 0xFFFFFFFFl)
    (V.is_const (V.shift Insn.Sar (c 0x80000000l) 31));
  Alcotest.(check (option int32)) "wrapped pointer add" (Some 1l)
    (V.is_const (V.add_wrapped (c 0xFFFFFFFFl) 2l))

let test_v_lattice () =
  let j = V.join (V.const 3l) (V.const 7l) in
  Alcotest.(check bool) "join contains both" true (V.contains j 3l && V.contains j 7l);
  Alcotest.(check bool) "join stays bounded" true
    (match V.bounds j with Some (lo, hi) -> lo = 3L && hi = 7L | None -> false);
  Alcotest.(check bool) "leq into join" true (V.leq (V.const 3l) j);
  let w = V.widen (V.range 0L 10L) (V.range 0L 20L) in
  Alcotest.(check bool) "widen jumps the unstable bound" true
    (match V.bounds w with Some (_, hi) -> hi = 0xFFFFFFFFL | None -> false);
  let n = V.narrow w (V.range 0L 20L) in
  Alcotest.(check bool) "narrow recovers the refined bound" true
    (match V.bounds n with Some (_, hi) -> hi = 20L | None -> false);
  Alcotest.(check bool) "bot below everything" true (V.leq V.bot (V.const 0l));
  Alcotest.(check bool) "top contains everything" true
    (V.contains V.top 0l && V.contains V.top 0xFFFFFFFFl);
  Alcotest.(check bool) "taint survives join" true (V.taint (V.join V.byte (V.const 1l)));
  Alcotest.(check bool) "without trims an endpoint" true
    (match V.bounds (V.without (V.range 0L 9L) 0l) with
    | Some (lo, _) -> lo = 1L
    | None -> false);
  Alcotest.(check bool) "without singleton is bot" true
    (V.is_bot (V.without (V.const 4l) 4l))

let test_v_bytes () =
  Alcotest.(check (option int32)) "low byte of const" (Some 0x34l)
    (V.is_const (V.low_byte (V.const 0x1234l)));
  Alcotest.(check (option int32)) "merge_low8 exact" (Some 0x12ABl)
    (V.is_const (V.merge_low8 (V.const 0x1234l) (V.const 0xABl)));
  let merged = V.merge_low8 (V.const 0x1234l) V.byte in
  Alcotest.(check bool) "merge_low8 with unknown byte stays sound" true
    (V.contains merged 0x1200l && V.contains merged 0x12FFl)

let test_region () =
  let r = Absint.Region.(store empty ~addr:(V.const 0x08048000l) ~width:4) in
  Alcotest.(check bool) "writes" true (Absint.Region.writes r);
  Alcotest.(check bool) "bounded" true (Absint.Region.max_bytes r = Some 4L);
  Alcotest.(check bool) "touches its bytes" true
    (Absint.Region.may_touch r ~lo:0x08048002L ~hi:0x08048002L);
  Alcotest.(check bool) "misses elsewhere" false
    (Absint.Region.may_touch r ~lo:0x08048010L ~hi:0x08048020L);
  Alcotest.(check bool) "empty writes nothing" false
    (Absint.Region.writes Absint.Region.empty);
  Alcotest.(check bool) "top unbounded" true
    (Absint.Region.max_bytes Absint.Region.top = None)

(* ------------------------------------------------------------------ *)
(* the CFG fixpoint *)

let test_analyze_getpc_const () =
  (* call +0; pop eax — the pushed return address must be the constant
     code_base+5, which is the whole point of modelling Call exactly *)
  let code = Encode.program [ Insn.Call_rel 0; Insn.Pop_reg Reg.EAX ] in
  let r = Absint.analyze ~entry:(Absint.entry_state ()) (Cfg.build code) in
  match Hashtbl.find_opt r.Absint.in_states 5 with
  | None -> Alcotest.fail "call target block not reachable"
  | Some st -> (
      match st.Absint.stack with
      | top :: _ ->
          Alcotest.(check (option int32)) "pushed return address is constant"
            (Some 0x08048005l) (V.is_const top)
      | [] -> Alcotest.fail "abstract stack empty after call")

let test_analyze_loop_terminates () =
  (* mov ecx,16; L: xor byte [esi],0x5A; inc esi; loop L — an advancing
     store pointer must reach the fixpoint via widening and summarise as
     an unbounded may-write region *)
  let code =
    Encode.program
      [
        Insn.Mov (Insn.S32bit, Insn.Reg Reg.ECX, Insn.Imm 16l);
        Insn.Arith (Insn.Xor, Insn.S8bit, Insn.Mem (Insn.mem_base Reg.ESI), Insn.Imm 0x5Al);
        Insn.Inc (Insn.S32bit, Insn.Reg Reg.ESI);
        Insn.Loop (-6);
      ]
  in
  let r = Absint.analyze ~entry:(Absint.entry_state ()) (Cfg.build code) in
  Alcotest.(check bool) "loop head reachable" true (List.mem 5 r.Absint.reachable);
  Alcotest.(check bool) "the loop writes" true (Absint.Region.writes r.Absint.out.Absint.written)

(* ------------------------------------------------------------------ *)
(* qcheck: the per-instruction transfer function over-approximates the
   emulator.  Start both machines from the same concrete registers (the
   abstract one from exact constants, optionally joined with noise so
   the non-singleton paths get exercised) and require every concrete
   post-register to be contained in its abstract counterpart. *)

let scratch_regs = [ Reg.EAX; Reg.ECX; Reg.EDX; Reg.EBX; Reg.EBP; Reg.ESI; Reg.EDI ]
let gen_reg = QCheck2.Gen.oneofl scratch_regs
let gen_int32 = QCheck2.Gen.ui32

let gen_safe_insn =
  let open QCheck2.Gen in
  let arith =
    oneofl [ Insn.Add; Insn.Or; Insn.Adc; Insn.Sbb; Insn.And; Insn.Sub; Insn.Xor; Insn.Cmp ]
  in
  let shift = oneofl [ Insn.Rol; Insn.Ror; Insn.Shl; Insn.Shr; Insn.Sar ] in
  oneof
    [
      (let* d = gen_reg and* s = gen_reg in
       return (Insn.Mov (Insn.S32bit, Insn.Reg d, Insn.Reg s)));
      (let* d = gen_reg and* v = gen_int32 in
       return (Insn.Mov (Insn.S32bit, Insn.Reg d, Insn.Imm v)));
      (let* op = arith and* d = gen_reg and* s = gen_reg in
       return (Insn.Arith (op, Insn.S32bit, Insn.Reg d, Insn.Reg s)));
      (let* op = arith and* d = gen_reg and* v = gen_int32 in
       return (Insn.Arith (op, Insn.S32bit, Insn.Reg d, Insn.Imm v)));
      (let* d = gen_reg in
       return (Insn.Not (Insn.S32bit, Insn.Reg d)));
      (let* d = gen_reg in
       return (Insn.Neg (Insn.S32bit, Insn.Reg d)));
      (let* d = gen_reg in
       return (Insn.Inc (Insn.S32bit, Insn.Reg d)));
      (let* d = gen_reg in
       return (Insn.Dec (Insn.S32bit, Insn.Reg d)));
      (let* op = shift and* d = gen_reg and* n = int_range 1 31 in
       return (Insn.Shift (op, Insn.S32bit, Insn.Reg d, n)));
      (let* d = gen_reg and* b = gen_reg and* disp = gen_int32 in
       return (Insn.Lea (d, { Insn.base = Some b; index = None; disp })));
      (let* a = gen_reg and* b = gen_reg in
       return (Insn.Xchg (a, b)));
      (let* d = gen_reg in
       return (Insn.Movzx (d, Insn.Reg8 Reg.CL)));
      (let* d = gen_reg in
       return (Insn.Movsx (d, Insn.Reg8 Reg.DL)));
      return Insn.Cdq;
      return Insn.Cwde;
      (let* r = gen_reg in
       return (Insn.Push_reg r));
      (let* d = gen_reg and* s = gen_reg in
       return (Insn.Imul2 (d, Insn.Reg s)));
      (let* d = gen_reg and* s = gen_reg and* v = gen_int32 in
       return (Insn.Imul3 (d, Insn.Reg s, v)));
    ]

let gen_regs = QCheck2.Gen.array_size (QCheck2.Gen.return 7) gen_int32

let run_one_concrete insn regs =
  let code = Encode.insn_to_bytes insn in
  let emu = Emulator.create ~code () in
  List.iteri (fun i r -> Emulator.set_reg emu r regs.(i)) scratch_regs;
  match Emulator.step emu with
  | Emulator.Running -> Some (Array.init 8 (fun i -> Emulator.reg emu (Reg.of_code i)))
  | _ -> None

let abstract_of ~noise regs =
  let st = Absint.entry_state () in
  List.fold_left
    (fun st (i, r) ->
      let v = V.const regs.(i) in
      let v = match noise with None -> v | Some w -> V.join v (V.const w) in
      Absint.set st r v)
    st
    (List.mapi (fun i r -> (i, r)) scratch_regs)

let contained st (concrete : int32 array) =
  List.for_all
    (fun i -> V.contains (Absint.get st (Reg.of_code i)) concrete.(i))
    [ 0; 1; 2; 3; 4; 5; 6; 7 ]

let prop_step_over_approximates =
  QCheck2.Test.make ~name:"Absint.step_insn over-approximates Emulator.step" ~count:1000
    QCheck2.Gen.(triple gen_safe_insn gen_regs (option gen_int32))
    (fun (insn, regs, noise) ->
      match run_one_concrete insn regs with
      | None -> true (* the concrete step halted: nothing to contain *)
      | Some concrete ->
          let st = abstract_of ~noise regs in
          let st' = Absint.step_insn st insn in
          contained st' concrete)

(* ------------------------------------------------------------------ *)
(* qcheck: must-refute soundness.  Whenever the static pre-stage claims
   a refutation, the concrete confirmer must independently refute. *)

let sound_refutation ?config code =
  match Static_refute.run ?config ~code ~entry:0 () with
  | None -> true
  | Some _ -> (
      match Confirm.run ?config ~code ~entry:0 () with
      | Confirm.Refuted _ -> true
      | _ -> false)

let gen_any_insn =
  let open QCheck2.Gen in
  oneof
    [
      gen_safe_insn;
      (let* d = gen_reg and* b = gen_reg and* disp = int_range (-64) 256 in
       return
         (Insn.Mov
            (Insn.S32bit, Insn.Mem (Insn.mem_base_disp b (Int32.of_int disp)), Insn.Reg d)));
      (let* d = gen_reg and* b = gen_reg and* disp = int_range (-64) 256 in
       return
         (Insn.Mov
            (Insn.S32bit, Insn.Reg d, Insn.Mem (Insn.mem_base_disp b (Int32.of_int disp)))));
      (let* b = gen_reg and* v = gen_int32 in
       return (Insn.Mov (Insn.S32bit, Insn.Mem (Insn.mem_base b), Insn.Imm v)));
      (let* b = gen_reg in
       return (Insn.Arith (Insn.Xor, Insn.S8bit, Insn.Mem (Insn.mem_base b), Insn.Imm 0x5Al)));
      (let* disp = int_range (-8) 16 in
       return (Insn.Jmp_rel disp));
      (let* cc = oneofl [ Insn.E; Insn.NE; Insn.B; Insn.A; Insn.S; Insn.L ]
       and* disp = int_range (-8) 16 in
       return (Insn.Jcc_rel (cc, disp)));
      (let* disp = int_range (-8) 16 in
       return (Insn.Loop disp));
      (let* disp = int_range (-8) 16 in
       return (Insn.Jecxz disp));
      (let* disp = int_range 0 8 in
       return (Insn.Call_rel disp));
      return Insn.Ret;
      (let* r = gen_reg in
       return (Insn.Pop_reg r));
      return Insn.Int3;
      return (Insn.Int 0x80);
      return (Insn.Int 0x81);
      (let* v = oneofl [ 11l; 102l; 3l ] in
       return (Insn.Mov (Insn.S32bit, Insn.Reg Reg.EAX, Insn.Imm v)));
      return Insn.Stosb;
      return Insn.Lodsb;
      return Insn.Movsb;
      return Insn.Rep_stosb;
      return Insn.Cld;
      return Insn.Std;
      return Insn.Pushad;
      return Insn.Popad;
      return Insn.Pushfd;
      return Insn.Popfd;
      (let* sz = oneofl [ Insn.S8bit; Insn.S32bit ] and* r = gen_reg in
       return (Insn.Div (sz, Insn.Reg r)));
    ]

let prop_refuter_sound_on_programs =
  QCheck2.Test.make ~name:"static refutation implies concrete refutation (programs)"
    ~count:500
    QCheck2.Gen.(list_size (int_range 1 12) gen_any_insn)
    (fun insns ->
      match Encode.program insns with
      | exception Invalid_argument _ -> true
      | "" -> true
      | code -> sound_refutation code)

let prop_refuter_sound_on_bytes =
  QCheck2.Test.make ~name:"static refutation implies concrete refutation (raw bytes)"
    ~count:500
    QCheck2.Gen.(string_size (int_range 1 64))
    (fun code -> sound_refutation code)

(* ------------------------------------------------------------------ *)
(* corpora regressions *)

let test_decoys_statically_refuted () =
  List.iter
    (fun seed ->
      let code =
        Adversarial.payload ~kind:Adversarial.Decoy_decoder ~size:2048 (Rng.create seed)
      in
      (match Static_refute.run ~code ~entry:0 () with
      | Some _ -> ()
      | None -> Alcotest.failf "decoy seed %Ld: expected a static refutation" seed);
      (* and the claim is honest: the emulator agrees *)
      match Confirm.run ~code ~entry:0 () with
      | Confirm.Refuted _ -> ()
      | o -> Alcotest.failf "decoy seed %Ld: emulator disagrees: %a" seed Confirm.pp o)
    [ 1L; 2L; 3L; 4L; 5L ]

let check_never_statically_refuted name code =
  match Static_refute.run ~code ~entry:0 () with
  | None -> ()
  | Some reason -> Alcotest.failf "%s: statically refuted a true decoder (%s)" name reason

let test_true_decoders_never_refuted () =
  List.iter
    (fun seed ->
      let g = Admmutate.generate (Rng.create seed) ~payload:shellcode in
      check_never_statically_refuted
        (Printf.sprintf "admmutate seed %Ld" seed)
        g.Admmutate.code)
    [ 1L; 2L; 3L; 4L; 5L; 6L; 7L; 8L ];
  List.iter
    (fun seed ->
      let g = Admmutate.generate_staged (Rng.create seed) ~payload:shellcode in
      check_never_statically_refuted (Printf.sprintf "staged seed %Ld" seed) g.Admmutate.code)
    [ 1L; 2L; 3L ];
  List.iter
    (fun seed ->
      let g = Clet.generate (Rng.create seed) ~payload:shellcode in
      check_never_statically_refuted (Printf.sprintf "clet seed %Ld" seed) g.Clet.code)
    [ 1L; 2L; 3L; 4L; 5L ];
  List.iter
    (fun (e : Shellcodes.entry) ->
      check_never_statically_refuted e.Shellcodes.name e.Shellcodes.code)
    Shellcodes.all

let test_refuter_respects_seed_failures () =
  (* inputs the confirmer rejects before emulating must never be
     statically refuted either *)
  Alcotest.(check bool) "empty image" true (Static_refute.run ~code:"" ~entry:0 () = None);
  Alcotest.(check bool) "entry out of bounds" true
    (Static_refute.run ~code:"\x90" ~entry:7 () = None);
  Alcotest.(check bool) "negative entry" true
    (Static_refute.run ~code:"\x90" ~entry:(-1) () = None);
  let config = { Confirm.default_config with Confirm.arena_size = 8192 } in
  Alcotest.(check bool) "image too large for arena" true
    (Static_refute.run ~config ~code:(String.make 8192 '\x90') ~entry:0 () = None)

let test_refuter_examples () =
  (* int3 straight away: provably refuted *)
  (match Static_refute.run ~code:"\xcc" ~entry:0 () with
  | Some _ -> ()
  | None -> Alcotest.fail "int3 must statically refute");
  (* a store to a wild constant address: provably refuted *)
  let wild =
    Encode.program
      [
        Insn.Mov (Insn.S32bit, Insn.Reg Reg.ESI, Insn.Imm 0x0BAD0000l);
        Insn.Mov (Insn.S32bit, Insn.Mem (Insn.mem_base Reg.ESI), Insn.Imm 1l);
        Insn.Int3;
      ]
  in
  (match Static_refute.run ~code:wild ~entry:0 () with
  | Some _ -> ()
  | None -> Alcotest.fail "wild store must statically refute");
  (* execve reachable: must NOT refute (the emulator would confirm) *)
  let execve = "\xb8\x0b\x00\x00\x00\xcd\x80" in
  Alcotest.(check bool) "execve left to the emulator" true
    (Static_refute.run ~code:execve ~entry:0 () = None);
  (* jmp self: concrete outcome is Inconclusive Budget, not refuted *)
  Alcotest.(check bool) "infinite loop left alone" true
    (Static_refute.run ~code:"\xeb\xfe" ~entry:0 () = None)

(* ------------------------------------------------------------------ *)
(* pipeline integration: the pre-stage short-circuits the emulator
   without changing any verdict *)

open Sanids_net
open Sanids_nids

let attacker = Ipaddr.of_string "172.16.5.5"
let victim = Ipaddr.of_string "10.0.0.80"

let payload_packet ?(ts = 1.0) payload =
  Packet.build_tcp ~ts ~src:attacker ~dst:victim ~src_port:4321 ~dst_port:80
    payload

let base_config = Config.with_classification false Config.default
let confirm_config = Config.with_confirm (Some Confirm.default_config) base_config
let static_config = Config.with_static_refute true confirm_config

let test_pipeline_static_demotes_decoy () =
  let decoy =
    Adversarial.payload ~kind:Adversarial.Decoy_decoder ~size:2048 (Rng.create 23L)
  in
  let on = Pipeline.create static_config in
  Alcotest.(check int) "decoy demoted"
    0
    (List.length (Pipeline.process_packet on (payload_packet decoy)));
  let s = Pipeline.stats on in
  Alcotest.(check bool) "statically refuted at least once" true
    (s.Stats.static_refuted >= 1);
  Alcotest.(check int) "nothing confirmed" 0 s.Stats.confirmed;
  (* verdict equivalence against the emulator-only pipeline *)
  let off = Pipeline.create confirm_config in
  Alcotest.(check int) "same alerts as emulator-only" 0
    (List.length (Pipeline.process_packet off (payload_packet decoy)));
  let s' = Pipeline.stats off in
  Alcotest.(check int) "emulator-only path never counts static refutations" 0
    s'.Stats.static_refuted

let test_pipeline_static_keeps_decoder () =
  let adm = (Admmutate.generate (Rng.create 7L) ~payload:shellcode).Admmutate.code in
  let on = Pipeline.create static_config in
  let alerts = Pipeline.process_packet on (payload_packet adm) in
  Alcotest.(check bool) "true decoder still alerts" true (alerts <> []);
  List.iter
    (fun (a : Alert.t) ->
      Alcotest.(check bool) "alert still marked confirmed" true a.Alert.confirmed)
    alerts;
  let s = Pipeline.stats on in
  Alcotest.(check bool) "decoder confirmed by the emulator" true (s.Stats.confirmed >= 1)

let test_static_refute_config () =
  (* the spec grammar roundtrips the key *)
  (match Config.of_spec "static_refute=true" with
  | Ok f -> Alcotest.(check bool) "spec sets the flag" true (f Config.default).Config.static_refute
  | Error e -> Alcotest.fail e);
  (match Config.of_spec "static_refute=maybe" with
  | Ok _ -> Alcotest.fail "bad boolean must be rejected"
  | Error _ -> ());
  (* SL209: the pre-stage without a confirm stage is a config error *)
  let orphan = Config.with_static_refute true base_config in
  Alcotest.(check bool) "SL209 emitted" true
    (List.exists
       (fun f -> f.Sanids_staticlint.Finding.code = "SL209")
       (Config.lint orphan));
  (match Config.validate orphan with
  | Ok _ -> Alcotest.fail "static_refute without confirm must not validate"
  | Error _ -> ());
  (match Config.validate static_config with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "valid config rejected: %s" e)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "absint"
    [
      ( "value-domain",
        [
          Alcotest.test_case "constant transformers" `Quick test_v_consts;
          Alcotest.test_case "lattice structure" `Quick test_v_lattice;
          Alcotest.test_case "byte surgery" `Quick test_v_bytes;
          Alcotest.test_case "write regions" `Quick test_region;
        ] );
      ( "fixpoint",
        [
          Alcotest.test_case "getpc return address constant" `Quick test_analyze_getpc_const;
          Alcotest.test_case "decrypt loop terminates" `Quick test_analyze_loop_terminates;
        ] );
      ( "soundness",
        [
          QCheck_alcotest.to_alcotest prop_step_over_approximates;
          QCheck_alcotest.to_alcotest prop_refuter_sound_on_programs;
          QCheck_alcotest.to_alcotest prop_refuter_sound_on_bytes;
        ] );
      ( "corpora",
        [
          Alcotest.test_case "decoys statically refuted" `Quick test_decoys_statically_refuted;
          Alcotest.test_case "true decoders never refuted" `Quick
            test_true_decoders_never_refuted;
          Alcotest.test_case "seed failures honoured" `Quick test_refuter_respects_seed_failures;
          Alcotest.test_case "hand examples" `Quick test_refuter_examples;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "decoy demoted statically" `Quick
            test_pipeline_static_demotes_decoy;
          Alcotest.test_case "true decoder unaffected" `Quick
            test_pipeline_static_keeps_decoder;
          Alcotest.test_case "config plumbing and SL209" `Quick test_static_refute_config;
        ] );
    ]
