(* Tests for the Snort-style rule language of the signature baseline. *)

open Sanids_net
open Sanids_baseline

let ip = Ipaddr.of_string

let parse_ok line =
  match Rule.parse line with
  | Ok r -> r
  | Error e -> Alcotest.failf "parse %S failed: %s" line e

let parse_err line =
  match Rule.parse line with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "parse %S should have failed" line

let test_parse_basic () =
  let r = parse_ok {|alert tcp any any -> any 80 (msg:"web shellcode"; content:"/bin/sh";)|} in
  Alcotest.(check string) "msg" "web shellcode" r.Rule.msg;
  Alcotest.(check (option int)) "dst port" (Some 80) r.Rule.dst_port;
  Alcotest.(check (option int)) "src port any" None r.Rule.src_port;
  Alcotest.(check int) "one content" 1 (List.length r.Rule.contents);
  Alcotest.(check bool) "proto tcp" true (r.Rule.proto = Rule.P_tcp)

let test_parse_hex_content () =
  let r = parse_ok {|alert tcp any any -> any any (msg:"x"; content:"|90 90|ABC|cd 80|";)|} in
  match r.Rule.contents with
  | [ c ] -> Alcotest.(check string) "mixed decode" "\x90\x90ABC\xcd\x80" c.Rule.pattern
  | _ -> Alcotest.fail "expected one content"

let test_parse_modifiers () =
  let r =
    parse_ok
      {|alert udp any any -> any 1434 (msg:"m"; content:"|04|"; offset:0; depth:1; content:"xyz"; nocase;)|}
  in
  match r.Rule.contents with
  | [ a; b ] ->
      Alcotest.(check int) "offset" 0 a.Rule.offset;
      Alcotest.(check (option int)) "depth" (Some 1) a.Rule.depth;
      Alcotest.(check bool) "nocase attaches to last content" true b.Rule.nocase;
      Alcotest.(check bool) "first content not nocase" false a.Rule.nocase
  | _ -> Alcotest.fail "expected two contents"

let test_parse_cidr_endpoints () =
  let r =
    parse_ok {|alert tcp 10.0.0.0/8 any -> 192.168.1.1 22 (msg:"ssh"; content:"SSH";)|}
  in
  (match r.Rule.src with
  | Some p -> Alcotest.(check bool) "src prefix" true (Ipaddr.mem (ip "10.9.9.9") p)
  | None -> Alcotest.fail "expected src prefix");
  match r.Rule.dst with
  | Some p ->
      Alcotest.(check bool) "bare address is /32" true (Ipaddr.mem (ip "192.168.1.1") p);
      Alcotest.(check bool) "/32 excludes neighbours" false (Ipaddr.mem (ip "192.168.1.2") p)
  | None -> Alcotest.fail "expected dst prefix"

let test_parse_rejects () =
  parse_err "";
  parse_err "# a comment";
  parse_err "drop tcp any any -> any any (content:\"x\";)";
  parse_err "alert tcp any any -> any any ()";
  parse_err "alert tcp any any -> any any (msg:\"no content\";)";
  parse_err "alert tcp any any <- any any (content:\"x\";)";
  parse_err "alert tcp any any -> any 99999 (content:\"x\";)";
  parse_err {|alert tcp any any -> any any (content:"|zz|";)|};
  parse_err {|alert tcp any any -> any any (nocase; content:"x";)|}

let test_parse_many () =
  let rules, errors = Rule.parse_many Rule.default_ruleset in
  Alcotest.(check int) "no errors in shipped ruleset" 0 (List.length errors);
  Alcotest.(check int) "ten rules" 10 (List.length rules)

(* ------------------------------------------------------------------ *)
(* matching *)

let engine () =
  let rules, _ = Rule.parse_many Rule.default_ruleset in
  Rule.compile rules

let test_match_shellcode_packet () =
  let e = engine () in
  let sc = (Sanids_exploits.Shellcodes.find "classic").Sanids_exploits.Shellcodes.code in
  let p =
    Packet.build_tcp ~ts:0.0 ~src:(ip "1.2.3.4") ~dst:(ip "10.0.0.1") ~src_port:1111
      ~dst_port:80 sc
  in
  Alcotest.(check bool) "push signature fires" true
    (List.mem "shellcode push /bin//sh" (Rule.match_packet e p))

let test_match_port_filter () =
  let e = engine () in
  let req = Sanids_exploits.Code_red.request () in
  let to_port port =
    Packet.build_tcp ~ts:0.0 ~src:(ip "1.2.3.4") ~dst:(ip "10.0.0.1") ~src_port:1111
      ~dst_port:port req
  in
  Alcotest.(check bool) "fires on port 80" true
    (List.mem "code red ida overflow" (Rule.match_packet e (to_port 80)));
  Alcotest.(check bool) "quiet on port 8080" false
    (List.mem "code red ida overflow" (Rule.match_packet e (to_port 8080)))

let test_match_proto_filter () =
  let e = engine () in
  let slammer = Sanids_exploits.Slammer.datagram () in
  let udp =
    Packet.build_udp ~ts:0.0 ~src:(ip "1.2.3.4") ~dst:(ip "10.0.0.1") ~src_port:9
      ~dst_port:1434 slammer
  in
  let tcp =
    Packet.build_tcp ~ts:0.0 ~src:(ip "1.2.3.4") ~dst:(ip "10.0.0.1") ~src_port:9
      ~dst_port:1434 slammer
  in
  Alcotest.(check bool) "udp rule fires" true
    (List.mem "sql slammer" (Rule.match_packet e udp));
  Alcotest.(check bool) "tcp delivery ignored by udp rule" false
    (List.mem "sql slammer" (Rule.match_packet e tcp))

let test_match_depth_window () =
  let rules, _ =
    Rule.parse_many
      {|alert ip any any -> any any (msg:"lead"; content:"|04|"; offset:0; depth:1;)|}
  in
  let e = Rule.compile rules in
  Alcotest.(check bool) "leading byte matches" true
    (Rule.match_payload e "\x04rest" <> []);
  Alcotest.(check bool) "byte later in stream does not" false
    (Rule.match_payload e "xx\x04rest" <> [])

let test_match_nocase () =
  let rules, _ =
    Rule.parse_many {|alert ip any any -> any any (msg:"ci"; content:"AtTaCk"; nocase;)|}
  in
  let e = Rule.compile rules in
  Alcotest.(check bool) "case-insensitive" true (Rule.match_payload e "an attack!" <> []);
  Alcotest.(check bool) "absent" false (Rule.match_payload e "benign" <> [])

let test_match_requires_all_contents () =
  let rules, _ =
    Rule.parse_many
      {|alert ip any any -> any any (msg:"and"; content:"one"; content:"two";)|}
  in
  let e = Rule.compile rules in
  Alcotest.(check bool) "both present" true (Rule.match_payload e "one and two" <> []);
  Alcotest.(check bool) "one missing" false (Rule.match_payload e "only one" <> [])

let test_ruleset_agrees_with_builtin_signatures () =
  (* the rule text expresses the same patterns as Signatures.default *)
  let e = engine () in
  let corpus =
    List.map
      (fun (x : Sanids_exploits.Shellcodes.entry) -> x.Sanids_exploits.Shellcodes.code)
      Sanids_exploits.Shellcodes.all
  in
  List.iter
    (fun code ->
      let via_rules = Rule.match_payload e code <> [] in
      let via_builtin = Signatures.scan code <> None in
      if via_rules <> via_builtin then
        Alcotest.failf "ruleset and builtin signatures disagree")
    corpus

let () =
  Alcotest.run "rules"
    [
      ( "parse",
        [
          Alcotest.test_case "basic" `Quick test_parse_basic;
          Alcotest.test_case "hex content" `Quick test_parse_hex_content;
          Alcotest.test_case "modifiers" `Quick test_parse_modifiers;
          Alcotest.test_case "cidr endpoints" `Quick test_parse_cidr_endpoints;
          Alcotest.test_case "rejects" `Quick test_parse_rejects;
          Alcotest.test_case "shipped ruleset" `Quick test_parse_many;
        ] );
      ( "match",
        [
          Alcotest.test_case "shellcode packet" `Quick test_match_shellcode_packet;
          Alcotest.test_case "port filter" `Quick test_match_port_filter;
          Alcotest.test_case "proto filter" `Quick test_match_proto_filter;
          Alcotest.test_case "depth window" `Quick test_match_depth_window;
          Alcotest.test_case "nocase" `Quick test_match_nocase;
          Alcotest.test_case "all contents required" `Quick test_match_requires_all_contents;
          Alcotest.test_case "agrees with builtin" `Quick
            test_ruleset_agrees_with_builtin_signatures;
        ] );
    ]
