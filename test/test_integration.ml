(* The whole system, one scenario: a ten-minute trace carrying a benign
   floor plus five distinct attacks, processed by the fully configured
   NIDS (classification + stream reassembly), then re-checked through a
   pcap round trip and through the multicore path.  The expected alert
   set is exact: every attack found, nothing else. *)

open Sanids_net
open Sanids_nids
open Sanids_exploits

let ip = Ipaddr.of_string
let clients = Ipaddr.prefix_of_string "10.10.0.0/16"
let servers = Ipaddr.prefix_of_string "10.20.0.0/16"
let unused = Ipaddr.prefix_of_string "10.20.192.0/18"
let honeypot = ip "10.20.0.250"

let config =
  Config.default
  |> Config.with_honeypots [ honeypot ]
  |> Config.with_unused [ unused ]
  |> Config.with_reassembly true

(* attack sources *)
let crii_src = ip "198.18.1.1"
let slammer_src = ip "198.18.2.2"
let poly_src = ip "203.0.113.3"
let frag_src = ip "198.18.4.4"
let reverse_src = ip "203.0.113.5"

let scans rng src t0 =
  List.init 6 (fun s ->
      Sanids_workload.Worm_gen.scan_packet rng ~ts:(t0 +. (0.2 *. float_of_int s))
        ~src ~unused)

let scenario () =
  let rng = Rng.create 0x16C7_0001L in
  let benign =
    Sanids_workload.Benign_gen.packets rng ~n:3000 ~t0:0.0 ~clients ~servers
  in
  let victim k = Ipaddr.nth servers (100 + k) in
  (* 1. Code Red II: scans then the exploit *)
  let crii = scans rng crii_src 30.0 @ [ Code_red.packet ~ts:32.0 ~src:crii_src ~dst:(victim 1) () ] in
  (* 2. Slammer: the sprays are the worm *)
  let slammer =
    List.init 6 (fun s ->
        Slammer.packet ~ts:(60.0 +. (0.05 *. float_of_int s)) ~src:slammer_src
          ~dst:(Ipaddr.nth unused (40 + s)) ())
    @ [ Slammer.packet ~ts:61.0 ~src:slammer_src ~dst:(victim 2) () ]
  in
  (* 3. honeypot prober delivering a polymorphic exploit *)
  let g = Sanids_polymorph.Admmutate.generate ~family:Sanids_polymorph.Admmutate.Xor_loop rng ~payload:(Shellcodes.find "classic").Shellcodes.code in
  let poly =
    [
      Packet.build_tcp ~ts:120.0 ~src:poly_src ~dst:honeypot ~src_port:999
        ~dst_port:80 "GET / HTTP/1.0\r\n\r\n";
      Exploit_gen.packet rng ~ts:121.0 ~src:poly_src ~dst:(victim 3)
        ~shellcode:g.Sanids_polymorph.Admmutate.code;
    ]
  in
  (* 4. a scanner delivering its exploit split across TCP segments *)
  let frag_payload =
    Exploit_gen.http_exploit rng ~shellcode:(Shellcodes.find "stack-store").Shellcodes.code
  in
  let fragments =
    let n = String.length frag_payload in
    List.init 12 (fun i ->
        let lo = i * n / 12 and hi = (i + 1) * n / 12 in
        Packet.build_tcp
          ~ts:(180.0 +. (0.1 *. float_of_int i))
          ~src:frag_src ~dst:(victim 4) ~src_port:777 ~dst_port:80
          ~seq:(Int32.add 5000l (Int32.of_int lo))
          (String.sub frag_payload lo (hi - lo)))
  in
  let frag = scans rng frag_src 175.0 @ fragments in
  (* 5. honeypot prober delivering a reverse shell *)
  let reverse =
    [
      Packet.build_tcp ~ts:240.0 ~src:reverse_src ~dst:honeypot ~src_port:555
        ~dst_port:22 "SSH-2.0-probe\r\n";
      Exploit_gen.packet rng ~ts:241.0 ~src:reverse_src ~dst:(victim 5)
        ~shellcode:(Shellcodes.find "reverse-4444").Shellcodes.code;
    ]
  in
  List.sort
    (fun a b -> compare a.Packet.ts b.Packet.ts)
    (benign @ crii @ slammer @ poly @ frag @ reverse)

(* note: the polymorphic source raises ONLY decrypt-loop — its
   shell-spawning payload is ciphertext until the decoder runs, which is
   precisely why the decryption-loop template exists *)
let expected =
  [
    ("code-red-ii", crii_src);
    ("connect-back-shell", reverse_src);
    ("decrypt-loop", poly_src);
    ("shell-spawn", frag_src);
    ("shell-spawn", reverse_src);
    ("slammer", slammer_src);
  ]

let observed alerts =
  List.sort_uniq compare
    (List.map (fun a -> (a.Alert.template, a.Alert.src)) alerts)

let check_alerts label alerts =
  let obs = observed alerts in
  let render l =
    String.concat ", "
      (List.map (fun (t, s) -> t ^ "@" ^ Ipaddr.to_string s) l)
  in
  Alcotest.(check string) label (render (List.sort compare expected)) (render obs)

let test_sequential () =
  let pkts = scenario () in
  let nids = Pipeline.create config in
  check_alerts "sequential pipeline" (Pipeline.process_packets nids pkts);
  let s = Pipeline.stats nids in
  Alcotest.(check int) "every packet seen" (List.length pkts) s.Stats.packets;
  Alcotest.(check bool) "analysis stayed narrow" true
    (s.Stats.classified_suspicious < List.length pkts / 4)

let test_via_pcap () =
  let pkts = scenario () in
  let path = Filename.temp_file "sanids_integration" ".pcap" in
  Sanids_pcap.Pcap.write_file path (Sanids_pcap.Pcap.of_packets pkts);
  let capture = Sanids_pcap.Pcap.read_file path in
  Sys.remove path;
  let nids = Pipeline.create config in
  check_alerts "after pcap round trip" (Pipeline.process_pcap nids capture)

let test_via_parallel () =
  let pkts = scenario () in
  let alerts, stats = Parallel.process ~domains:3 config pkts in
  check_alerts "parallel path" alerts;
  Alcotest.(check int) "packet accounting" (List.length pkts) stats.Stats.packets

let () =
  Alcotest.run "integration"
    [
      ( "day-in-the-life",
        [
          Alcotest.test_case "sequential" `Quick test_sequential;
          Alcotest.test_case "pcap round trip" `Quick test_via_pcap;
          Alcotest.test_case "parallel" `Quick test_via_parallel;
        ] );
    ]
