(* The adversarial-load hardening contract: exact budget fuel
   accounting, circuit-breaker transitions, watchdog restart
   accounting, and the pipeline-level property that any adversarial
   payload under a tight budget terminates in bounds, never raises,
   and is answered by the degraded pass. *)

open Sanids_semantic
open Sanids_nids
open Sanids_exploits
module Adversarial = Sanids_workload.Adversarial

(* ------------------------------------------------------------------ *)
(* budget fuel accounting *)

let tight = { Budget.max_bytes = 100; max_insns = 50; max_match_steps = 30; deadline = 0. }

let test_take_accounting () =
  let b = Budget.start tight in
  Alcotest.(check bool) "within bytes" true (Budget.take_bytes b 60);
  Alcotest.(check bool) "still within" true (Budget.take_bytes b 40);
  Alcotest.(check int) "bytes spent" 100 (Budget.spent b).Budget.bytes;
  Alcotest.(check bool) "alive at the line" true (Budget.alive b);
  (* the denying take spends nothing *)
  Alcotest.(check bool) "over the line" false (Budget.take_bytes b 1);
  Alcotest.(check int) "denied take spent nothing" 100 (Budget.spent b).Budget.bytes;
  Alcotest.(check bool) "tripped" false (Budget.alive b);
  (match Budget.tripped b with
  | Some Budget.Bytes -> ()
  | r ->
      Alcotest.failf "wrong trip reason: %s"
        (match r with None -> "none" | Some r -> Budget.reason_to_string r));
  match Budget.outcome b with
  | Budget.Truncated Budget.Bytes -> ()
  | o -> Alcotest.failf "wrong outcome: %s" (Budget.outcome_to_string o)

let test_tripped_sticky () =
  let b = Budget.start tight in
  Alcotest.(check bool) "trip on insns" false (Budget.take_insns b 51);
  (* once tripped, every dimension is denied and nothing more is spent *)
  Alcotest.(check bool) "bytes denied after trip" false (Budget.take_bytes b 1);
  Alcotest.(check bool) "steps denied after trip" false (Budget.take_steps b 1);
  let s = Budget.spent b in
  Alcotest.(check int) "no bytes spent" 0 s.Budget.bytes;
  Alcotest.(check int) "no steps spent" 0 s.Budget.steps;
  match Budget.tripped b with
  | Some Budget.Instructions -> ()
  | _ -> Alcotest.fail "first trip reason not preserved"

let test_unlimited_never_trips () =
  let b = Budget.start Budget.unlimited in
  for _ = 1 to 1000 do
    assert (Budget.take_bytes b 4096);
    assert (Budget.take_insns b 4096);
    assert (Budget.take_steps b 4096)
  done;
  Alcotest.(check bool) "alive" true (Budget.alive b);
  Alcotest.(check bool) "complete" true (Budget.outcome b = Budget.Complete)

let test_limits_parse () =
  (match Budget.limits_of_string "default" with
  | Ok l -> Alcotest.(check bool) "default word" true (l = Budget.default_limits)
  | Error e -> Alcotest.fail e);
  (match Budget.limits_of_string "unlimited" with
  | Ok l -> Alcotest.(check bool) "unlimited word" true (l = Budget.unlimited)
  | Error e -> Alcotest.fail e);
  (* round trip through the printed form (a disabled deadline is
     omitted when printing and defaulted when parsing, so compare the
     bounded dimensions) *)
  List.iter
    (fun l ->
      match Budget.limits_of_string (Budget.limits_to_string l) with
      | Ok l' ->
          Alcotest.(check bool) "round trip" true
            (l.Budget.max_bytes = l'.Budget.max_bytes
            && l.Budget.max_insns = l'.Budget.max_insns
            && l.Budget.max_match_steps = l'.Budget.max_match_steps)
      | Error e -> Alcotest.failf "round trip rejected: %s" e)
    [ Budget.default_limits; Budget.unlimited; tight ];
  List.iter
    (fun s ->
      match Budget.limits_of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" s)
    [ "bytes=0"; "insns=-5"; "steps=nope"; "fuel=3"; "deadline=-1" ]

(* random take sequences: spent never exceeds limits, the first trip
   reason is final, and takes after a trip are all denied *)
let prop_spent_within_limits =
  let open QCheck2 in
  Test.make ~name:"budget spent <= limits under random takes" ~count:300
    Gen.(list_size (int_range 1 80) (pair (int_range 0 2) (int_range 0 40)))
    (fun takes ->
      let b = Budget.start { tight with max_bytes = 90; max_insns = 70; max_match_steps = 55 } in
      let tripped_seen = ref false in
      List.iter
        (fun (dim, n) ->
          let granted =
            match dim with
            | 0 -> Budget.take_bytes b n
            | 1 -> Budget.take_insns b n
            | _ -> Budget.take_steps b n
          in
          if !tripped_seen && granted then failwith "take granted after trip";
          if not granted then tripped_seen := true)
        takes;
      let s = Budget.spent b in
      s.Budget.bytes <= 90 && s.Budget.insns <= 70 && s.Budget.steps <= 55
      && Budget.alive b = not !tripped_seen)

(* ------------------------------------------------------------------ *)
(* breaker transitions *)

let bcfg = { Breaker.failures = 2; cooldown = 4; max_cooldown = 8 }

(* one analyzed packet: the template is (maybe) admitted, reports its
   outcome, and the packet clock advances *)
let packet br name ~tripped =
  let admitted = Breaker.admit br name in
  if admitted then Breaker.record br name ~tripped;
  Breaker.tick br;
  admitted

let test_opens_after_consecutive_trips () =
  let br = Breaker.create bcfg in
  Alcotest.(check bool) "first trip admitted" true (packet br "t" ~tripped:true);
  Alcotest.(check bool) "still closed" true (Breaker.state br "t" = Breaker.Closed);
  Alcotest.(check bool) "second trip admitted" true (packet br "t" ~tripped:true);
  (match Breaker.state br "t" with
  (* the tick after the opening packet already spent one cooldown unit *)
  | Breaker.Open n -> Alcotest.(check int) "base cooldown" bcfg.Breaker.cooldown (n + 1)
  | _ -> Alcotest.fail "not open after [failures] consecutive trips");
  Alcotest.(check bool) "excluded while open" false (packet br "t" ~tripped:false);
  Alcotest.(check (list string)) "listed open" [ "t" ] (Breaker.open_templates br);
  Alcotest.(check int) "one opening" 1 (Breaker.openings br)

let test_clean_packet_resets_streak () =
  let br = Breaker.create bcfg in
  ignore (packet br "t" ~tripped:true);
  ignore (packet br "t" ~tripped:false);
  ignore (packet br "t" ~tripped:true);
  Alcotest.(check bool) "still closed" true (Breaker.state br "t" = Breaker.Closed)

let test_half_open_probe_closes () =
  let br = Breaker.create bcfg in
  ignore (packet br "t" ~tripped:true);
  ignore (packet br "t" ~tripped:true);
  (* burn the cooldown on the packet clock *)
  for _ = 1 to bcfg.Breaker.cooldown - 1 do
    Alcotest.(check bool) "cooling" false (packet br "t" ~tripped:false)
  done;
  Alcotest.(check bool) "half-open probe admitted" true (packet br "t" ~tripped:false);
  Alcotest.(check bool) "clean probe closes" true (Breaker.state br "t" = Breaker.Closed);
  Alcotest.(check int) "still one opening" 1 (Breaker.openings br)

let test_retrip_doubles_cooldown_capped () =
  let br = Breaker.create bcfg in
  ignore (packet br "t" ~tripped:true);
  ignore (packet br "t" ~tripped:true);
  for _ = 1 to bcfg.Breaker.cooldown - 1 do
    ignore (packet br "t" ~tripped:false)
  done;
  (* tripped probe reopens with doubled cooldown *)
  ignore (packet br "t" ~tripped:true);
  (match Breaker.state br "t" with
  | Breaker.Open n -> Alcotest.(check int) "doubled" (2 * bcfg.Breaker.cooldown) (n + 1)
  | _ -> Alcotest.fail "tripped probe did not reopen");
  for _ = 1 to (2 * bcfg.Breaker.cooldown) - 1 do
    ignore (packet br "t" ~tripped:false)
  done;
  ignore (packet br "t" ~tripped:true);
  (* third streak would be 16 packets unbacked off; the cap holds it *)
  (match Breaker.state br "t" with
  | Breaker.Open n -> Alcotest.(check int) "capped" bcfg.Breaker.max_cooldown (n + 1)
  | _ -> Alcotest.fail "third streak did not reopen");
  Alcotest.(check int) "three openings" 3 (Breaker.openings br)

let test_breakers_independent () =
  let br = Breaker.create bcfg in
  ignore (packet br "a" ~tripped:true);
  ignore (packet br "a" ~tripped:true);
  Alcotest.(check bool) "a open" false (Breaker.admit br "a");
  Alcotest.(check bool) "b unaffected" true (Breaker.admit br "b")

let test_breaker_config_parse () =
  (match Breaker.config_of_string "fails=5,max=9999" with
  | Ok c ->
      Alcotest.(check int) "fails" 5 c.Breaker.failures;
      Alcotest.(check int) "default cooldown kept" Breaker.default_config.Breaker.cooldown
        c.Breaker.cooldown
  | Error e -> Alcotest.fail e);
  List.iter
    (fun s ->
      match Breaker.config_of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" s)
    [ "fails=0"; "cooldown=2,max=1"; "volts=3"; "fails=many" ]

(* ------------------------------------------------------------------ *)
(* watchdog restart accounting *)

let wcfg = { Watchdog.stall_after = 0.1; max_restarts = 2; backoff = 2.0 }

let test_watchdog_sequence () =
  let wd = Watchdog.create wcfg in
  Alcotest.(check bool) "idle is steady" true
    (Watchdog.observe wd ~now:10.0 ~busy_since:None = Watchdog.Steady);
  Alcotest.(check bool) "short busy is steady" true
    (Watchdog.observe wd ~now:10.0 ~busy_since:(Some 9.95) = Watchdog.Steady);
  Alcotest.(check bool) "stall restarts" true
    (Watchdog.observe wd ~now:10.0 ~busy_since:(Some 9.8) = Watchdog.Restart);
  Alcotest.(check int) "one restart" 1 (Watchdog.restarts wd);
  (* the abandoned generation's heartbeat predates the restart *)
  Alcotest.(check bool) "old generation reads steady" true
    (Watchdog.observe wd ~now:11.0 ~busy_since:(Some 9.8) = Watchdog.Steady);
  (* backoff: the replacement gets twice the patience *)
  Alcotest.(check (float 1e-9)) "threshold doubled" 0.2 (Watchdog.threshold wd);
  Alcotest.(check bool) "under doubled threshold" true
    (Watchdog.observe wd ~now:10.55 ~busy_since:(Some 10.4) = Watchdog.Steady);
  Alcotest.(check bool) "second stall restarts" true
    (Watchdog.observe wd ~now:10.7 ~busy_since:(Some 10.4) = Watchdog.Restart);
  Alcotest.(check int) "two restarts" 2 (Watchdog.restarts wd);
  (* cap reached: a further stall exhausts instead of respawn-looping *)
  Alcotest.(check bool) "cap exhausts" true
    (Watchdog.observe wd ~now:12.0 ~busy_since:(Some 11.0) = Watchdog.Exhausted);
  Alcotest.(check int) "restarts unchanged" 2 (Watchdog.restarts wd)

let test_watchdog_config_for () =
  let c = Watchdog.config_for ~deadline:0.5 in
  Alcotest.(check (float 1e-9)) "8x deadline" 4.0 c.Watchdog.stall_after;
  let c = Watchdog.config_for ~deadline:0.001 in
  Alcotest.(check (float 1e-9)) "floored" 0.05 c.Watchdog.stall_after;
  match Watchdog.validate_config { wcfg with Watchdog.max_restarts = -1 } with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative restart cap accepted"

(* ------------------------------------------------------------------ *)
(* the pipeline under adversarial load *)

let tight_budget =
  { Budget.max_bytes = 8192; max_insns = 300; max_match_steps = 3000; deadline = 0. }

let hardened_config =
  Config.default
  |> Config.with_budget (Some tight_budget)
  |> Config.with_breaker (Some bcfg)
  |> Config.with_degrade true

let uniq_names vs =
  List.sort_uniq compare (List.map (fun v -> v.Pipeline.match_.Matcher.template) vs)

(* any adversarial payload, tight budget: analysis terminates, never
   raises, verdicts stay deduplicated, and a truncated analysis is
   answered by the degraded pass *)
let prop_adversarial_in_budget =
  let open QCheck2 in
  let gen_kind = Gen.oneofl Adversarial.kinds in
  Test.make ~name:"adversarial payloads stay in budget, never raise" ~count:60
    Gen.(triple gen_kind int64 (int_range 64 8192))
    (fun (kind, seed, size) ->
      let nids = Pipeline.create hardened_config in
      let payload = Adversarial.payload ~kind ~size (Sanids_util.Rng.create seed) in
      let r = Pipeline.analyze_report nids payload in
      let names = List.map (fun v -> v.Pipeline.match_.Matcher.template) r.Pipeline.verdicts in
      List.length names = List.length (List.sort_uniq compare names)
      && (match r.Pipeline.outcome with
         | Budget.Complete -> true
         | Budget.Truncated _ -> r.Pipeline.degraded)
      && List.for_all
           (fun (v : Pipeline.verdict) ->
             (not v.Pipeline.degraded) || v.Pipeline.match_.Matcher.offsets = [])
           r.Pipeline.verdicts)

(* with the budget unlimited and the breaker quiet, the hardened
   pipeline's verdicts are exactly the plain pipeline's *)
let test_unlimited_budget_equivalence () =
  let rng = Sanids_util.Rng.create 0xB4D6E7L in
  let payloads =
    [
      (Shellcodes.find "classic").Shellcodes.code;
      Exploit_gen.http_exploit rng ~shellcode:(Shellcodes.find "classic").Shellcodes.code;
      Adversarial.payload ~kind:Adversarial.Jmp_maze ~size:512 rng;
      Adversarial.payload ~kind:Adversarial.Unicode_bomb ~size:512 rng;
      "GET /index.html HTTP/1.0\r\n\r\n";
    ]
  in
  let plain = Pipeline.create Config.default in
  let hard =
    Pipeline.create
      (Config.default
      |> Config.with_budget (Some Budget.unlimited)
      |> Config.with_breaker (Some Breaker.default_config)
      |> Config.with_degrade true)
  in
  List.iteri
    (fun i p ->
      let r = Pipeline.analyze_report hard p in
      Alcotest.(check bool)
        (Printf.sprintf "payload %d complete" i)
        true
        (r.Pipeline.outcome = Budget.Complete && not r.Pipeline.degraded);
      Alcotest.(check (list string))
        (Printf.sprintf "payload %d same verdicts" i)
        (uniq_names (Pipeline.analyze plain p))
        (uniq_names r.Pipeline.verdicts))
    payloads

(* a real exploit clears the production-shaped default budget *)
let test_default_budget_passes_exploit () =
  let nids =
    Pipeline.create
      (Config.default |> Config.with_budget (Some Budget.default_limits))
  in
  let rng = Sanids_util.Rng.create 0x5EEDL in
  let payload =
    Exploit_gen.http_exploit rng ~shellcode:(Shellcodes.find "classic").Shellcodes.code
  in
  let r = Pipeline.analyze_report nids payload in
  Alcotest.(check bool) "complete" true (r.Pipeline.outcome = Budget.Complete);
  Alcotest.(check bool) "shell-spawn found" true
    (List.mem "shell-spawn" (uniq_names r.Pipeline.verdicts))

(* the stats projection counts what the analyses reported *)
let test_truncation_counted () =
  let nids = Pipeline.create hardened_config in
  let rng = Sanids_util.Rng.create 0xADA7L in
  let truncated = ref 0 and degraded = ref 0 in
  for _ = 1 to 20 do
    let p = Adversarial.payload ~kind:Adversarial.Jmp_maze ~size:4096 rng in
    let r = Pipeline.analyze_report nids p in
    (match r.Pipeline.outcome with Budget.Truncated _ -> incr truncated | _ -> ());
    if r.Pipeline.degraded then incr degraded
  done;
  Alcotest.(check bool) "jmp maze trips the budget" true (!truncated > 0);
  let st = Pipeline.stats nids in
  Alcotest.(check int) "truncated counted" !truncated st.Stats.budget_truncated;
  Alcotest.(check int) "degraded counted" !degraded st.Stats.degraded

(* truncated and degraded analyses must never poison the verdict cache:
   re-analyzing the same payload re-runs the full analysis *)
let test_no_cache_poisoning () =
  let nids = Pipeline.create hardened_config in
  let p =
    Adversarial.payload ~kind:Adversarial.Jmp_maze ~size:4096
      (Sanids_util.Rng.create 0xCAFEL)
  in
  let r1 = Pipeline.analyze_report nids p in
  let r2 = Pipeline.analyze_report nids p in
  Alcotest.(check bool) "truncated" true (r1.Pipeline.outcome <> Budget.Complete);
  Alcotest.(check bool) "not served from cache" true
    (List.for_all (fun v -> not v.Pipeline.cached) r2.Pipeline.verdicts);
  Alcotest.(check bool) "same outcome on re-analysis" true
    (r1.Pipeline.outcome = r2.Pipeline.outcome)

let test_degrade_requires_mechanism () =
  match Config.validate (Config.default |> Config.with_degrade true) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "degrade with no budget or breaker accepted"

let () =
  Alcotest.run "budget"
    [
      ( "budget",
        [
          Alcotest.test_case "take accounting" `Quick test_take_accounting;
          Alcotest.test_case "tripped is sticky" `Quick test_tripped_sticky;
          Alcotest.test_case "unlimited never trips" `Quick test_unlimited_never_trips;
          Alcotest.test_case "limits parse" `Quick test_limits_parse;
          QCheck_alcotest.to_alcotest prop_spent_within_limits;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "opens after consecutive trips" `Quick
            test_opens_after_consecutive_trips;
          Alcotest.test_case "clean packet resets streak" `Quick
            test_clean_packet_resets_streak;
          Alcotest.test_case "half-open probe closes" `Quick test_half_open_probe_closes;
          Alcotest.test_case "re-trip doubles cooldown, capped" `Quick
            test_retrip_doubles_cooldown_capped;
          Alcotest.test_case "breakers are independent" `Quick test_breakers_independent;
          Alcotest.test_case "config parse" `Quick test_breaker_config_parse;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "observe sequence" `Quick test_watchdog_sequence;
          Alcotest.test_case "config_for" `Quick test_watchdog_config_for;
        ] );
      ( "pipeline",
        [
          QCheck_alcotest.to_alcotest prop_adversarial_in_budget;
          Alcotest.test_case "unlimited budget is equivalence" `Quick
            test_unlimited_budget_equivalence;
          Alcotest.test_case "default budget passes a real exploit" `Quick
            test_default_budget_passes_exploit;
          Alcotest.test_case "truncation and degradation counted" `Quick
            test_truncation_counted;
          Alcotest.test_case "no cache poisoning" `Quick test_no_cache_poisoning;
          Alcotest.test_case "degrade requires a mechanism" `Quick
            test_degrade_requires_mechanism;
        ] );
    ]
