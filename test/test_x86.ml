(* Unit, golden and property tests for the x86 encoder/decoder/assembler. *)

open Sanids_x86

let check_string = Alcotest.(check string)
let check_int = Alcotest.(check int)

let insn_testable = Alcotest.testable Pretty.pp Insn.equal

let hex = Hexdump.encode

let check_encodes expect i =
  check_string (Pretty.to_string i) expect (hex (Encode.insn_to_bytes i))

(* ------------------------------------------------------------------ *)
(* Golden encodings, including every instruction from the paper's
   Figure 1 listings. *)

let test_figure1a_bytes () =
  (* decode: xor byte ptr [eax], 95h ; inc eax ; loop decode *)
  check_encodes "803095"
    (Insn.Arith (Insn.Xor, Insn.S8bit, Insn.Mem (Insn.mem_base Reg.EAX), Insn.Imm 0x95l));
  check_encodes "40" (Insn.Inc (Insn.S32bit, Insn.Reg Reg.EAX));
  check_encodes "e2fa" (Insn.Loop (-6))

let test_figure1b_bytes () =
  (* mov ebx, 31h ; add ebx, 64h ; xor byte ptr [eax], bl ; add eax, 1 *)
  check_encodes "bb31000000"
    (Insn.Mov (Insn.S32bit, Insn.Reg Reg.EBX, Insn.Imm 0x31l));
  check_encodes "83c364"
    (Insn.Arith (Insn.Add, Insn.S32bit, Insn.Reg Reg.EBX, Insn.Imm 0x64l));
  check_encodes "3018"
    (Insn.Arith (Insn.Xor, Insn.S8bit, Insn.Mem (Insn.mem_base Reg.EAX), Insn.Reg8 Reg.BL));
  check_encodes "83c001"
    (Insn.Arith (Insn.Add, Insn.S32bit, Insn.Reg Reg.EAX, Insn.Imm 1l))

let test_common_shellcode_bytes () =
  check_encodes "90" Insn.Nop;
  check_encodes "cd80" (Insn.Int 0x80);
  check_encodes "cc" Insn.Int3;
  check_encodes "31c0"
    (Insn.Arith (Insn.Xor, Insn.S32bit, Insn.Reg Reg.EAX, Insn.Reg Reg.EAX));
  check_encodes "50" (Insn.Push_reg Reg.EAX);
  check_encodes "5b" (Insn.Pop_reg Reg.EBX);
  check_encodes "682f736800" (Insn.Push_imm 0x0068732Fl);
  check_encodes "6a0b" (Insn.Push_imm 11l);
  check_encodes "c3" Insn.Ret;
  check_encodes "99" Insn.Cdq;
  check_encodes "f7d0" (Insn.Not (Insn.S32bit, Insn.Reg Reg.EAX));
  check_encodes "f7db" (Insn.Neg (Insn.S32bit, Insn.Reg Reg.EBX));
  check_encodes "f3a4" Insn.Rep_movsb;
  check_encodes "f3ab" Insn.Rep_stosd;
  check_encodes "0fb6c3" (Insn.Movzx (Reg.EAX, Insn.Reg8 Reg.BL));
  check_encodes "0fbe11" (Insn.Movsx (Reg.EDX, Insn.Mem (Insn.mem_base Reg.ECX)));
  check_encodes "f7e3" (Insn.Mul (Insn.S32bit, Insn.Reg Reg.EBX));
  check_encodes "f7f9" (Insn.Idiv (Insn.S32bit, Insn.Reg Reg.ECX));
  check_encodes "0fafc3" (Insn.Imul2 (Reg.EAX, Insn.Reg Reg.EBX));
  check_encodes "6bc305" (Insn.Imul3 (Reg.EAX, Insn.Reg Reg.EBX, 5l));
  check_encodes "69c300010000" (Insn.Imul3 (Reg.EAX, Insn.Reg Reg.EBX, 256l))

let test_modrm_forms () =
  (* disp8 vs disp32 vs absolute vs SIB *)
  check_encodes "8b4304"
    (Insn.Mov (Insn.S32bit, Insn.Reg Reg.EAX, Insn.Mem (Insn.mem_base_disp Reg.EBX 4l)));
  check_encodes "8b8300010000"
    (Insn.Mov (Insn.S32bit, Insn.Reg Reg.EAX, Insn.Mem (Insn.mem_base_disp Reg.EBX 256l)));
  check_encodes "8b0d44332211"
    (Insn.Mov (Insn.S32bit, Insn.Reg Reg.ECX, Insn.Mem (Insn.mem_abs 0x11223344l)));
  (* ESP base forces SIB *)
  check_encodes "8b0424"
    (Insn.Mov (Insn.S32bit, Insn.Reg Reg.EAX, Insn.Mem (Insn.mem_base Reg.ESP)));
  (* EBP base forces a displacement byte *)
  check_encodes "8b4500"
    (Insn.Mov (Insn.S32bit, Insn.Reg Reg.EAX, Insn.Mem (Insn.mem_base Reg.EBP)));
  (* base + scaled index *)
  check_encodes "8b048b"
    (Insn.Mov
       ( Insn.S32bit,
         Insn.Reg Reg.EAX,
         Insn.Mem { Insn.base = Some Reg.EBX; index = Some (Reg.ECX, Insn.S4); disp = 0l } ));
  (* index without base *)
  check_encodes "8b04cd00000000"
    (Insn.Mov
       ( Insn.S32bit,
         Insn.Reg Reg.EAX,
         Insn.Mem { Insn.base = None; index = Some (Reg.ECX, Insn.S8); disp = 0l } ))

let test_lea_and_shift () =
  check_encodes "8d4801"
    (Insn.Lea (Reg.ECX, Insn.mem_base_disp Reg.EAX 1l));
  check_encodes "c1e005" (Insn.Shift (Insn.Shl, Insn.S32bit, Insn.Reg Reg.EAX, 5));
  check_encodes "d1e8" (Insn.Shift (Insn.Shr, Insn.S32bit, Insn.Reg Reg.EAX, 1))

let test_branches () =
  check_encodes "eb05" (Insn.Jmp_rel 5);
  check_encodes "e900010000" (Insn.Jmp_rel 256);
  check_encodes "7405" (Insn.Jcc_rel (Insn.E, 5));
  check_encodes "0f8400010000" (Insn.Jcc_rel (Insn.E, 256));
  check_encodes "e8fbffffff" (Insn.Call_rel (-5));
  check_encodes "e3fe" (Insn.Jecxz (-2))

let test_encode_rejects () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  raises (fun () ->
      Encode.insn_to_bytes
        (Insn.Mov (Insn.S32bit, Insn.Mem (Insn.mem_base Reg.EAX), Insn.Mem (Insn.mem_base Reg.EBX))));
  raises (fun () ->
      Encode.insn_to_bytes (Insn.Mov (Insn.S8bit, Insn.Reg Reg.EAX, Insn.Imm 1l)));
  raises (fun () -> Encode.insn_to_bytes (Insn.Loop 4000));
  raises (fun () -> Encode.insn_to_bytes (Insn.Shift (Insn.Shl, Insn.S32bit, Insn.Reg Reg.EAX, 0)));
  raises (fun () ->
      Encode.insn_to_bytes
        (Insn.Mov (Insn.S8bit, Insn.Reg8 Reg.AL, Insn.Imm 256l)));
  raises (fun () ->
      Encode.insn_to_bytes
        (Insn.Lea
           ( Reg.EAX,
             { Insn.base = None; index = Some (Reg.ESP, Insn.S1); disp = 0l } )))

(* ------------------------------------------------------------------ *)
(* Golden decodings *)

let decode_insns s =
  Array.to_list (Array.map (fun (d : Decode.decoded) -> d.Decode.insn) (Decode.all s))

let test_decode_figure1a () =
  let bytes = Hexdump.decode "80309540e2fa" in
  Alcotest.(check (list insn_testable))
    "figure 1a"
    [
      Insn.Arith (Insn.Xor, Insn.S8bit, Insn.Mem (Insn.mem_base Reg.EAX), Insn.Imm 0x95l);
      Insn.Inc (Insn.S32bit, Insn.Reg Reg.EAX);
      Insn.Loop (-6);
    ]
    (decode_insns bytes)

let test_decode_short_forms () =
  (* The decoder accepts accumulator short forms the encoder never emits. *)
  Alcotest.check insn_testable "04 imm8 = add al"
    (Insn.Arith (Insn.Add, Insn.S8bit, Insn.Reg8 Reg.AL, Insn.Imm 0x41l))
    (Decode.one "\x04\x41");
  Alcotest.check insn_testable "35 = xor eax, imm32"
    (Insn.Arith (Insn.Xor, Insn.S32bit, Insn.Reg Reg.EAX, Insn.Imm 0x11223344l))
    (Decode.one "\x35\x44\x33\x22\x11");
  Alcotest.check insn_testable "a8 = test al, imm8"
    (Insn.Test (Insn.S8bit, Insn.Reg8 Reg.AL, Insn.Imm 1l))
    (Decode.one "\xa8\x01");
  Alcotest.check insn_testable "91 = xchg ecx, eax"
    (Insn.Xchg (Reg.ECX, Reg.EAX))
    (Decode.one "\x91")

let test_decode_bad_bytes () =
  (* 0x0f with an unsupported second byte; a lone truncated mov *)
  (match Decode.one "\x0f\x05" with
  | Insn.Bad 0x0F -> ()
  | other -> Alcotest.failf "expected Bad 0x0f, got %s" (Pretty.to_string other));
  match Decode.one "\x8b" with
  | Insn.Bad 0x8B -> ()
  | other -> Alcotest.failf "expected Bad 0x8b, got %s" (Pretty.to_string other)

let test_decode_offsets_partition () =
  let t = Rng.create 2024L in
  for _ = 1 to 50 do
    let s = Rng.bytes t (Rng.int_in t 1 400) in
    let ds = Decode.all s in
    let total = Array.fold_left (fun acc (d : Decode.decoded) -> acc + d.Decode.len) 0 ds in
    check_int "lengths partition buffer" (String.length s) total;
    let expected_off = ref 0 in
    Array.iter
      (fun (d : Decode.decoded) ->
        check_int "contiguous" !expected_off d.Decode.off;
        expected_off := !expected_off + d.Decode.len)
      ds
  done

(* ------------------------------------------------------------------ *)
(* Assembler *)

let test_asm_figure1c () =
  (* The obfuscated Figure 1(c) routine, labels and all. *)
  let items =
    [
      Asm.Label "decode";
      Asm.I (Insn.Mov (Insn.S32bit, Insn.Reg Reg.ECX, Insn.Imm 0l));
      Asm.I (Insn.Inc (Insn.S32bit, Insn.Reg Reg.ECX));
      Asm.I (Insn.Inc (Insn.S32bit, Insn.Reg Reg.ECX));
      Asm.Jmp "one";
      Asm.Label "two";
      Asm.I (Insn.Arith (Insn.Add, Insn.S32bit, Insn.Reg Reg.EAX, Insn.Imm 1l));
      Asm.Jmp "three";
      Asm.Label "one";
      Asm.I (Insn.Mov (Insn.S32bit, Insn.Reg Reg.EBX, Insn.Imm 0x31l));
      Asm.I (Insn.Arith (Insn.Add, Insn.S32bit, Insn.Reg Reg.EBX, Insn.Imm 0x64l));
      Asm.I (Insn.Arith (Insn.Xor, Insn.S8bit, Insn.Mem (Insn.mem_base Reg.EAX), Insn.Reg8 Reg.BL));
      Asm.Jmp "two";
      Asm.Label "three";
      Asm.Loop_to "decode";
    ]
  in
  let code = Asm.assemble items in
  let ds = Decode.all code in
  (* every byte decodes to a real instruction, no Bad *)
  Array.iter
    (fun (d : Decode.decoded) ->
      match d.Decode.insn with
      | Insn.Bad b -> Alcotest.failf "bad byte 0x%02x at %d" b d.Decode.off
      | _ -> ())
    ds;
  (* the loop displacement lands back on offset 0 *)
  let last = ds.(Array.length ds - 1) in
  (match last.Decode.insn with
  | Insn.Loop d -> check_int "loop returns to decode" 0 (last.Decode.off + last.Decode.len + d)
  | other -> Alcotest.failf "expected loop, got %s" (Pretty.to_string other));
  (* jmp "one" skips the add block *)
  match ds.(3).Decode.insn with
  | Insn.Jmp_rel _ -> ()
  | other -> Alcotest.failf "expected jmp, got %s" (Pretty.to_string other)

let test_asm_undefined_label () =
  match Asm.assemble [ Asm.Jmp "nowhere" ] with
  | exception Asm.Error _ -> ()
  | _ -> Alcotest.fail "expected Asm.Error"

let test_asm_duplicate_label () =
  match Asm.assemble [ Asm.Label "a"; Asm.Label "a" ] with
  | exception Asm.Error _ -> ()
  | _ -> Alcotest.fail "expected Asm.Error"

let test_asm_loop_out_of_range () =
  let far = List.init 200 (fun _ -> Asm.I Insn.Nop) in
  match Asm.assemble ((Asm.Label "top" :: far) @ [ Asm.Loop_to "top" ]) with
  | exception Asm.Error _ -> ()
  | _ -> Alcotest.fail "expected Asm.Error for rel8 overflow"

let test_asm_raw_bytes () =
  let code = Asm.assemble [ Asm.Raw "\x90\x90"; Asm.I Insn.Ret ] in
  check_string "raw then ret" "9090c3" (hex code)

(* ------------------------------------------------------------------ *)
(* Property: decode ∘ encode = id on the valid instruction space *)

let gen_reg = QCheck2.Gen.oneofl (Array.to_list Reg.all)
let gen_reg8 = QCheck2.Gen.oneofl (Array.to_list Reg.all8)

let gen_scale = QCheck2.Gen.oneofl [ Insn.S1; Insn.S2; Insn.S4; Insn.S8 ]

let gen_disp =
  QCheck2.Gen.oneof
    [
      QCheck2.Gen.return 0l;
      QCheck2.Gen.map Int32.of_int (QCheck2.Gen.int_range (-128) 127);
      QCheck2.Gen.map Int32.of_int (QCheck2.Gen.int_range (-70000) 70000);
      QCheck2.Gen.return 0x7FFFFFFFl;
      QCheck2.Gen.return (-2147483648l);
    ]

let gen_index_reg = QCheck2.Gen.oneofl [ Reg.EAX; Reg.ECX; Reg.EDX; Reg.EBX; Reg.EBP; Reg.ESI; Reg.EDI ]

let gen_mem =
  let open QCheck2.Gen in
  let* base = opt gen_reg in
  let* index = opt (pair gen_index_reg gen_scale) in
  let* disp = gen_disp in
  return { Insn.base; index; disp }

let gen_imm32 =
  QCheck2.Gen.oneof
    [
      QCheck2.Gen.map Int32.of_int (QCheck2.Gen.int_range (-128) 127);
      QCheck2.Gen.map Int32.of_int (QCheck2.Gen.int_range (-100000) 100000);
      QCheck2.Gen.return 0x80000000l;
      QCheck2.Gen.return 0xDEADBEEFl;
    ]

let gen_imm8 = QCheck2.Gen.map Int32.of_int (QCheck2.Gen.int_range 0 255)

let gen_rm32 =
  QCheck2.Gen.oneof
    [ QCheck2.Gen.map (fun r -> Insn.Reg r) gen_reg; QCheck2.Gen.map (fun m -> Insn.Mem m) gen_mem ]

let gen_rm8 =
  QCheck2.Gen.oneof
    [ QCheck2.Gen.map (fun r -> Insn.Reg8 r) gen_reg8; QCheck2.Gen.map (fun m -> Insn.Mem m) gen_mem ]

let gen_arith_op =
  QCheck2.Gen.oneofl
    [ Insn.Add; Insn.Or; Insn.Adc; Insn.Sbb; Insn.And; Insn.Sub; Insn.Xor; Insn.Cmp ]

let gen_shift_op = QCheck2.Gen.oneofl [ Insn.Rol; Insn.Ror; Insn.Shl; Insn.Shr; Insn.Sar ]

let gen_cc =
  QCheck2.Gen.oneofl
    [
      Insn.O; Insn.NO; Insn.B; Insn.AE; Insn.E; Insn.NE; Insn.BE; Insn.A; Insn.S;
      Insn.NS; Insn.P; Insn.NP; Insn.L; Insn.GE; Insn.LE; Insn.G;
    ]

let gen_rel = QCheck2.Gen.oneof [ QCheck2.Gen.int_range (-128) 127; QCheck2.Gen.int_range (-100000) 100000 ]
let gen_rel8 = QCheck2.Gen.int_range (-128) 127

let gen_insn =
  let open QCheck2.Gen in
  oneof
    [
      (* mov, 32-bit *)
      (let* r = gen_reg and* v = gen_imm32 in
       return (Insn.Mov (Insn.S32bit, Insn.Reg r, Insn.Imm v)));
      (let* m = gen_mem and* v = gen_imm32 in
       return (Insn.Mov (Insn.S32bit, Insn.Mem m, Insn.Imm v)));
      (let* m = gen_mem and* r = gen_reg in
       return (Insn.Mov (Insn.S32bit, Insn.Mem m, Insn.Reg r)));
      (let* a = gen_reg and* b = gen_reg in
       return (Insn.Mov (Insn.S32bit, Insn.Reg a, Insn.Reg b)));
      (let* r = gen_reg and* m = gen_mem in
       return (Insn.Mov (Insn.S32bit, Insn.Reg r, Insn.Mem m)));
      (* mov, 8-bit *)
      (let* r = gen_reg8 and* v = gen_imm8 in
       return (Insn.Mov (Insn.S8bit, Insn.Reg8 r, Insn.Imm v)));
      (let* m = gen_mem and* v = gen_imm8 in
       return (Insn.Mov (Insn.S8bit, Insn.Mem m, Insn.Imm v)));
      (let* m = gen_mem and* r = gen_reg8 in
       return (Insn.Mov (Insn.S8bit, Insn.Mem m, Insn.Reg8 r)));
      (let* a = gen_reg8 and* b = gen_reg8 in
       return (Insn.Mov (Insn.S8bit, Insn.Reg8 a, Insn.Reg8 b)));
      (let* r = gen_reg8 and* m = gen_mem in
       return (Insn.Mov (Insn.S8bit, Insn.Reg8 r, Insn.Mem m)));
      (* arithmetic group *)
      (let* op = gen_arith_op and* rm = gen_rm32 and* v = gen_imm32 in
       return (Insn.Arith (op, Insn.S32bit, rm, Insn.Imm v)));
      (let* op = gen_arith_op and* rm = gen_rm8 and* v = gen_imm8 in
       return (Insn.Arith (op, Insn.S8bit, rm, Insn.Imm v)));
      (let* op = gen_arith_op and* rm = gen_rm32 and* r = gen_reg in
       return (Insn.Arith (op, Insn.S32bit, rm, Insn.Reg r)));
      (let* op = gen_arith_op and* r = gen_reg and* m = gen_mem in
       return (Insn.Arith (op, Insn.S32bit, Insn.Reg r, Insn.Mem m)));
      (let* op = gen_arith_op and* rm = gen_rm8 and* r = gen_reg8 in
       return (Insn.Arith (op, Insn.S8bit, rm, Insn.Reg8 r)));
      (let* op = gen_arith_op and* r = gen_reg8 and* m = gen_mem in
       return (Insn.Arith (op, Insn.S8bit, Insn.Reg8 r, Insn.Mem m)));
      (* test *)
      (let* rm = gen_rm32 and* r = gen_reg in
       return (Insn.Test (Insn.S32bit, rm, Insn.Reg r)));
      (let* rm = gen_rm8 and* r = gen_reg8 in
       return (Insn.Test (Insn.S8bit, rm, Insn.Reg8 r)));
      (let* rm = gen_rm32 and* v = gen_imm32 in
       return (Insn.Test (Insn.S32bit, rm, Insn.Imm v)));
      (let* rm = gen_rm8 and* v = gen_imm8 in
       return (Insn.Test (Insn.S8bit, rm, Insn.Imm v)));
      (* unary *)
      (let* rm = gen_rm32 in
       return (Insn.Not (Insn.S32bit, rm)));
      (let* rm = gen_rm8 in
       return (Insn.Not (Insn.S8bit, rm)));
      (let* rm = gen_rm32 in
       return (Insn.Neg (Insn.S32bit, rm)));
      (let* rm = gen_rm32 in
       return (Insn.Inc (Insn.S32bit, rm)));
      (let* rm = gen_rm8 in
       return (Insn.Inc (Insn.S8bit, rm)));
      (let* rm = gen_rm32 in
       return (Insn.Dec (Insn.S32bit, rm)));
      (let* rm = gen_rm8 in
       return (Insn.Dec (Insn.S8bit, rm)));
      (* shifts *)
      (let* op = gen_shift_op and* rm = gen_rm32 and* n = int_range 1 31 in
       return (Insn.Shift (op, Insn.S32bit, rm, n)));
      (let* op = gen_shift_op and* rm = gen_rm8 and* n = int_range 1 31 in
       return (Insn.Shift (op, Insn.S8bit, rm, n)));
      (* lea / xchg / stack *)
      (let* r = gen_reg and* m = gen_mem in
       return (Insn.Lea (r, m)));
      (let* a = gen_reg and* b = gen_reg in
       return (Insn.Xchg (a, b)));
      (let* r = gen_reg in
       return (Insn.Push_reg r));
      (let* r = gen_reg in
       return (Insn.Pop_reg r));
      (let* v = gen_imm32 in
       return (Insn.Push_imm v));
      (* control flow *)
      (let* d = gen_rel in
       return (Insn.Jmp_rel d));
      (let* cc = gen_cc and* d = gen_rel in
       return (Insn.Jcc_rel (cc, d)));
      (let* d = gen_rel in
       return (Insn.Call_rel d));
      (let* d = gen_rel8 in
       return (Insn.Loop d));
      (let* d = gen_rel8 in
       return (Insn.Loope d));
      (let* d = gen_rel8 in
       return (Insn.Loopne d));
      (let* d = gen_rel8 in
       return (Insn.Jecxz d));
      (let* n = int_range 0 255 in
       return (Insn.Int n));
      (* extended arithmetic *)
      (let* d = gen_reg and* s = gen_reg8 in
       return (Insn.Movzx (d, Insn.Reg8 s)));
      (let* d = gen_reg and* m = gen_mem in
       return (Insn.Movzx (d, Insn.Mem m)));
      (let* d = gen_reg and* s = gen_reg8 in
       return (Insn.Movsx (d, Insn.Reg8 s)));
      (let* rm = gen_rm32 in
       return (Insn.Mul (Insn.S32bit, rm)));
      (let* rm = gen_rm8 in
       return (Insn.Imul (Insn.S8bit, rm)));
      (let* rm = gen_rm32 in
       return (Insn.Div (Insn.S32bit, rm)));
      (let* rm = gen_rm32 in
       return (Insn.Idiv (Insn.S32bit, rm)));
      (let* d = gen_reg and* rm = gen_rm32 in
       return (Insn.Imul2 (d, rm)));
      (let* d = gen_reg and* rm = gen_rm32 and* v = gen_imm32 in
       return (Insn.Imul3 (d, rm, v)));
      (* nullary *)
      oneofl
        [
          Insn.Pushad; Insn.Popad; Insn.Pushfd; Insn.Popfd; Insn.Ret; Insn.Int3;
          Insn.Nop; Insn.Cld; Insn.Std; Insn.Lodsb; Insn.Lodsd; Insn.Stosb;
          Insn.Stosd; Insn.Movsb; Insn.Movsd; Insn.Scasb; Insn.Cmpsb; Insn.Cdq;
          Insn.Cwde; Insn.Clc; Insn.Stc; Insn.Cmc; Insn.Sahf; Insn.Lahf;
          Insn.Fwait; Insn.Rep_movsb; Insn.Rep_movsd; Insn.Rep_stosb;
          Insn.Rep_stosd;
        ];
    ]

let prop_roundtrip =
  QCheck2.Test.make ~name:"decode (encode i) = [i]" ~count:5000
    ~print:(fun i -> Pretty.to_string i)
    gen_insn
    (fun i ->
      let bytes = Encode.insn_to_bytes i in
      match decode_insns bytes with
      | [ j ] -> Insn.equal i j
      | _ -> false)

let prop_program_roundtrip =
  QCheck2.Test.make ~name:"decode (program is) = is" ~count:500
    ~print:(fun is -> Pretty.program_to_string is)
    QCheck2.Gen.(list_size (int_range 1 20) gen_insn)
    (fun is ->
      let bytes = Encode.program is in
      let decoded = decode_insns bytes in
      List.length decoded = List.length is && List.for_all2 Insn.equal is decoded)

let prop_decode_total =
  QCheck2.Test.make ~name:"decode never raises on junk" ~count:1000
    QCheck2.Gen.(string_size (int_bound 300))
    (fun s ->
      let ds = Decode.all s in
      Array.fold_left (fun acc (d : Decode.decoded) -> acc + d.Decode.len) 0 ds
      = String.length s)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [ prop_roundtrip; prop_program_roundtrip; prop_decode_total ]

let () =
  Alcotest.run "x86"
    [
      ( "encode",
        [
          Alcotest.test_case "figure 1a bytes" `Quick test_figure1a_bytes;
          Alcotest.test_case "figure 1b bytes" `Quick test_figure1b_bytes;
          Alcotest.test_case "shellcode staples" `Quick test_common_shellcode_bytes;
          Alcotest.test_case "modrm forms" `Quick test_modrm_forms;
          Alcotest.test_case "lea and shifts" `Quick test_lea_and_shift;
          Alcotest.test_case "branches" `Quick test_branches;
          Alcotest.test_case "rejects invalid" `Quick test_encode_rejects;
        ] );
      ( "decode",
        [
          Alcotest.test_case "figure 1a" `Quick test_decode_figure1a;
          Alcotest.test_case "short forms" `Quick test_decode_short_forms;
          Alcotest.test_case "bad bytes" `Quick test_decode_bad_bytes;
          Alcotest.test_case "offsets partition" `Quick test_decode_offsets_partition;
        ] );
      ( "asm",
        [
          Alcotest.test_case "figure 1c assembles" `Quick test_asm_figure1c;
          Alcotest.test_case "undefined label" `Quick test_asm_undefined_label;
          Alcotest.test_case "duplicate label" `Quick test_asm_duplicate_label;
          Alcotest.test_case "loop out of range" `Quick test_asm_loop_out_of_range;
          Alcotest.test_case "raw bytes" `Quick test_asm_raw_bytes;
        ] );
      ("properties", properties);
    ]
