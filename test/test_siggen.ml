(* Tests for automatic signature generation (Autograph/Polygraph-style)
   and its contrast with semantic detection — the paper's related-work
   argument made executable. *)

open Sanids_baseline
open Sanids_exploits

let classic = (Shellcodes.find "classic").Shellcodes.code

let crii_pool n =
  (* Code Red II deliveries differ only in jitter outside the vector *)
  List.init n (fun _ -> Code_red.request ())

let polymorphic_pool rng n =
  List.init n (fun _ ->
      (Sanids_polymorph.Admmutate.generate rng ~payload:classic)
        .Sanids_polymorph.Admmutate.code)

let test_infer_requires_pool () =
  match Siggen.infer [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty pool must be rejected"

let test_crii_signature_found () =
  let s = Siggen.infer (crii_pool 20) in
  Alcotest.(check bool) "tokens found" true (s.Siggen.tokens <> []);
  Alcotest.(check bool) "substantial signature" true (Siggen.specificity s >= 32);
  (* generalizes to an unseen instance *)
  Alcotest.(check bool) "matches fresh instance" true
    (Siggen.matches s (Code_red.request ()))

let test_crii_signature_specific () =
  let s = Siggen.infer (crii_pool 20) in
  let rng = Rng.create 0x51661L in
  for _ = 1 to 200 do
    let benign = Sanids_workload.Benign_gen.payload rng in
    if Siggen.matches s benign then
      Alcotest.fail "auto signature matched benign traffic"
  done

let test_polymorphic_pool_collapses () =
  (* the paper's motivating failure: a fully polymorphic pool shares no
     long invariant, so automatic signature generation yields nothing
     (or something too weak to match fresh instances) *)
  let rng = Rng.create 0x51662L in
  let s = Siggen.infer ~min_token_len:8 (polymorphic_pool rng 20) in
  let fresh = polymorphic_pool rng 30 in
  let caught = List.length (List.filter (Siggen.matches s) fresh) in
  Alcotest.(check bool)
    (Printf.sprintf "signature useless on fresh instances (%d/30)" caught)
    true (caught <= 3);
  (* while the semantic templates hold at 100% on the same instances *)
  let templates = Sanids_semantic.Template_lib.default_set in
  Alcotest.(check int) "semantic detection unaffected" 30
    (List.length
       (List.filter
          (fun c -> Sanids_semantic.Matcher.scan ~templates c <> [])
          fresh))

let test_plain_pool_works () =
  (* identical payload delivered repeatedly: trivially signable *)
  let rng = Rng.create 0x51663L in
  let pool =
    List.init 10 (fun _ -> Exploit_gen.http_exploit rng ~shellcode:classic)
  in
  let s = Siggen.infer pool in
  Alcotest.(check bool) "signature found" true (s.Siggen.tokens <> []);
  let fresh = Exploit_gen.http_exploit rng ~shellcode:classic in
  Alcotest.(check bool) "matches fresh delivery" true (Siggen.matches s fresh)

let test_coverage_knob () =
  (* a token present in only half the pool is kept at coverage 0.4 but
     dropped at 0.9 *)
  let pool =
    List.init 10 (fun i ->
        if i < 5 then "prefix-COMMONCOMMON-half-ALPHAALPHA"
        else "prefix-COMMONCOMMON-half-BRAVOBRAVO!")
  in
  let strict = Siggen.infer ~min_token_len:10 ~coverage:0.9 pool in
  let loose = Siggen.infer ~min_token_len:10 ~coverage:0.4 pool in
  Alcotest.(check bool) "strict keeps only the shared core" true
    (List.for_all
       (fun tok ->
         let contains hay needle =
           let n = String.length hay and m = String.length needle in
           let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
           go 0
         in
         contains "prefix-COMMONCOMMON-half-" tok || String.length tok <= 25)
       strict.Siggen.tokens);
  Alcotest.(check bool) "loose signature is more specific" true
    (Siggen.specificity loose >= Siggen.specificity strict)

let test_empty_signature_matches_nothing () =
  let s = { Siggen.tokens = []; trained_on = 0 } in
  Alcotest.(check bool) "no tokens, no match" false (Siggen.matches s "anything")

(* properties *)

let prop_tokens_cover_pool =
  QCheck2.Test.make ~name:"every inferred token meets the coverage bound" ~count:60
    QCheck2.Gen.(pair (string_size (int_range 40 200)) (int_range 3 10))
    (fun (base, n) ->
      (* pool: the base string with small random suffixes *)
      let pool = List.init n (fun i -> base ^ String.make (i mod 3) 'x') in
      let s = Siggen.infer ~coverage:1.0 pool in
      let contains hay needle =
        let hn = String.length hay and m = String.length needle in
        let rec go i = i + m <= hn && (String.sub hay i m = needle || go (i + 1)) in
        m = 0 || go 0
      in
      List.for_all (fun tok -> List.for_all (fun p -> contains p tok) pool)
        s.Siggen.tokens)

let prop_signature_matches_training_members =
  QCheck2.Test.make ~name:"signature matches its own full-coverage pool" ~count:60
    QCheck2.Gen.(string_size (int_range 40 300))
    (fun base ->
      let pool = List.init 5 (fun _ -> base) in
      let s = Siggen.infer ~coverage:1.0 pool in
      s.Siggen.tokens = [] || List.for_all (Siggen.matches s) pool)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [ prop_tokens_cover_pool; prop_signature_matches_training_members ]

let () =
  Alcotest.run "siggen"
    [
      ( "inference",
        [
          Alcotest.test_case "requires pool" `Quick test_infer_requires_pool;
          Alcotest.test_case "code red signature" `Quick test_crii_signature_found;
          Alcotest.test_case "code red specificity" `Quick test_crii_signature_specific;
          Alcotest.test_case "polymorphic collapse" `Quick test_polymorphic_pool_collapses;
          Alcotest.test_case "plain pool works" `Quick test_plain_pool_works;
          Alcotest.test_case "coverage knob" `Quick test_coverage_knob;
          Alcotest.test_case "empty matches nothing" `Quick test_empty_signature_matches_nothing;
        ] );
      ("properties", properties);
    ]
