(* Emulator tests: instruction semantics, self-modifying code, and the
   two validation suites that tie the whole system together:

   - every polymorphic decoder the engines generate is EXECUTED and must
     reconstruct the original payload in memory, then run it to the
     execve syscall;
   - the abstract constant-propagation domain is sound with respect to
     concrete execution. *)

open Sanids_x86
open Sanids_polymorph

let reg r = Insn.Reg r
let imm v = Insn.Imm v
let mov32 d s = Insn.Mov (Insn.S32bit, d, s)
let arith op d s = Insn.Arith (op, Insn.S32bit, d, s)

let run_program ?max_steps insns =
  let emu = Emulator.create ~code:(Encode.program insns) () in
  let outcome, _ = Emulator.run ?max_steps emu in
  (emu, outcome)

let read_mem emu addr n =
  match Emulator.read_mem_opt emu addr n with
  | Some s -> s
  | None -> Alcotest.failf "read of %d bytes at 0x%lx left the arena" n addr

let check_reg emu r expected =
  Alcotest.(check int32) (Reg.name r) expected (Emulator.reg emu r)

(* ------------------------------------------------------------------ *)
(* semantics goldens *)

let test_mov_and_arith () =
  let emu, _ =
    run_program
      [
        mov32 (reg Reg.EAX) (imm 5l);
        mov32 (reg Reg.EBX) (imm 7l);
        arith Insn.Add (reg Reg.EAX) (reg Reg.EBX);
        arith Insn.Sub (reg Reg.EBX) (imm 2l);
        arith Insn.Xor (reg Reg.ECX) (reg Reg.ECX);
        Insn.Int3;
      ]
  in
  check_reg emu Reg.EAX 12l;
  check_reg emu Reg.EBX 5l;
  check_reg emu Reg.ECX 0l

let test_flags_zero_sign () =
  let emu, _ =
    run_program [ mov32 (reg Reg.EAX) (imm 1l); arith Insn.Sub (reg Reg.EAX) (imm 1l); Insn.Int3 ]
  in
  Alcotest.(check bool) "zf" true (Emulator.flag_zf emu);
  let emu, _ =
    run_program [ mov32 (reg Reg.EAX) (imm 0l); arith Insn.Sub (reg Reg.EAX) (imm 1l); Insn.Int3 ]
  in
  Alcotest.(check bool) "sf" true (Emulator.flag_sf emu);
  Alcotest.(check bool) "cf borrow" true (Emulator.flag_cf emu);
  check_reg emu Reg.EAX 0xFFFFFFFFl

let test_carry_unsigned () =
  let emu, _ =
    run_program
      [ mov32 (reg Reg.EAX) (imm 0xFFFFFFFFl); arith Insn.Add (reg Reg.EAX) (imm 1l); Insn.Int3 ]
  in
  Alcotest.(check bool) "cf on wrap" true (Emulator.flag_cf emu);
  Alcotest.(check bool) "zf on wrap" true (Emulator.flag_zf emu)

let test_push_pop_stack () =
  let emu, _ =
    run_program
      [
        Insn.Push_imm 0x11223344l;
        Insn.Push_imm 0x55667788l;
        Insn.Pop_reg Reg.EAX;
        Insn.Pop_reg Reg.EBX;
        Insn.Int3;
      ]
  in
  check_reg emu Reg.EAX 0x55667788l;
  check_reg emu Reg.EBX 0x11223344l

let test_memory_store_load () =
  let emu, _ =
    run_program
      [
        mov32 (reg Reg.EDI) (imm (Int32.add Emulator.code_base 0x1000l));
        mov32 (Insn.Mem (Insn.mem_base Reg.EDI)) (imm 0xCAFEBABEl);
        mov32 (reg Reg.EAX) (Insn.Mem (Insn.mem_base Reg.EDI));
        Insn.Mov (Insn.S8bit, Insn.Reg8 Reg.BL, Insn.Mem (Insn.mem_base_disp Reg.EDI 1l));
        Insn.Int3;
      ]
  in
  check_reg emu Reg.EAX 0xCAFEBABEl;
  Alcotest.(check int32) "byte load" 0xBAl
    (Int32.logand (Emulator.reg emu Reg.EBX) 0xFFl)

let test_loop_counts () =
  (* sum 1..5 via loop *)
  let code =
    Asm.assemble
      [
        Asm.I (mov32 (reg Reg.ECX) (imm 5l));
        Asm.I (arith Insn.Xor (reg Reg.EAX) (reg Reg.EAX));
        Asm.Label "top";
        Asm.I (arith Insn.Add (reg Reg.EAX) (reg Reg.ECX));
        Asm.Loop_to "top";
        Asm.I Insn.Int3;
      ]
  in
  let emu = Emulator.create ~code () in
  let _ = Emulator.run emu in
  check_reg emu Reg.EAX 15l

let test_call_ret () =
  let code =
    Asm.assemble
      [
        Asm.Call "sub";
        Asm.I (arith Insn.Add (reg Reg.EAX) (imm 1l));
        Asm.I Insn.Int3;
        Asm.Label "sub";
        Asm.I (mov32 (reg Reg.EAX) (imm 41l));
        Asm.I Insn.Ret;
      ]
  in
  let emu = Emulator.create ~code () in
  let _ = Emulator.run emu in
  check_reg emu Reg.EAX 42l

let test_cond_branches () =
  let code =
    Asm.assemble
      [
        Asm.I (mov32 (reg Reg.EAX) (imm 3l));
        Asm.I (arith Insn.Cmp (reg Reg.EAX) (imm 3l));
        Asm.Jcc (Insn.E, "eq");
        Asm.I (mov32 (reg Reg.EBX) (imm 0l));
        Asm.I Insn.Int3;
        Asm.Label "eq";
        Asm.I (mov32 (reg Reg.EBX) (imm 1l));
        Asm.I Insn.Int3;
      ]
  in
  let emu = Emulator.create ~code () in
  let _ = Emulator.run emu in
  check_reg emu Reg.EBX 1l

let test_string_ops () =
  let emu, _ =
    run_program
      [
        (* copy 4 bytes via movsb *)
        mov32 (reg Reg.ESI) (imm Emulator.code_base);
        mov32 (reg Reg.EDI) (imm (Int32.add Emulator.code_base 0x2000l));
        Insn.Cld;
        Insn.Movsb;
        Insn.Movsb;
        Insn.Movsb;
        Insn.Movsb;
        Insn.Int3;
      ]
  in
  let copied = read_mem emu (Int32.add Emulator.code_base 0x2000l) 4 in
  let original = read_mem emu Emulator.code_base 4 in
  Alcotest.(check string) "movsb copies" original copied

let test_self_modifying_code () =
  (* the program patches a later instruction: mov ebx, 1 becomes
     mov ebx, 2 by overwriting its immediate *)
  let patch_site = 8 in
  let prog =
    Encode.program
      [
        mov32 (reg Reg.EDI)
          (imm (Int32.add Emulator.code_base (Int32.of_int (patch_site + 1))));
        Insn.Mov (Insn.S8bit, Insn.Mem (Insn.mem_base Reg.EDI), imm 2l);
        mov32 (reg Reg.EBX) (imm 1l);
        Insn.Int3;
      ]
  in
  (* check our patch-site arithmetic: instruction 3 starts at byte 10 *)
  let emu = Emulator.create ~code:prog () in
  let _ = Emulator.run emu in
  check_reg emu Reg.EBX 2l

let test_rep_stos_fill () =
  let emu, _ =
    run_program
      [
        mov32 (reg Reg.EDI) (imm (Int32.add Emulator.code_base 0x3000l));
        mov32 (reg Reg.ECX) (imm 16l);
        Insn.Mov (Insn.S8bit, Insn.Reg8 Reg.AL, imm 0x7Al);
        Insn.Cld;
        Insn.Rep_stosb;
        Insn.Int3;
      ]
  in
  Alcotest.(check string) "filled"
    (String.make 16 'z')
    (read_mem emu (Int32.add Emulator.code_base 0x3000l) 16);
  check_reg emu Reg.ECX 0l

let test_rep_movs_copy () =
  let emu, _ =
    run_program
      [
        mov32 (reg Reg.ESI) (imm Emulator.code_base);
        mov32 (reg Reg.EDI) (imm (Int32.add Emulator.code_base 0x3000l));
        mov32 (reg Reg.ECX) (imm 8l);
        Insn.Cld;
        Insn.Rep_movsb;
        Insn.Int3;
      ]
  in
  Alcotest.(check string) "copied"
    (read_mem emu Emulator.code_base 8)
    (read_mem emu (Int32.add Emulator.code_base 0x3000l) 8)

let test_mul_div () =
  let emu, _ =
    run_program
      [
        mov32 (reg Reg.EAX) (imm 7l);
        mov32 (reg Reg.EBX) (imm 6l);
        Insn.Mul (Insn.S32bit, reg Reg.EBX);
        Insn.Int3;
      ]
  in
  check_reg emu Reg.EAX 42l;
  check_reg emu Reg.EDX 0l;
  (* wide product lands in EDX:EAX *)
  let emu, _ =
    run_program
      [
        mov32 (reg Reg.EAX) (imm 0x80000000l);
        mov32 (reg Reg.EBX) (imm 4l);
        Insn.Mul (Insn.S32bit, reg Reg.EBX);
        Insn.Int3;
      ]
  in
  check_reg emu Reg.EDX 2l;
  check_reg emu Reg.EAX 0l;
  (* division with remainder *)
  let emu, _ =
    run_program
      [
        mov32 (reg Reg.EDX) (imm 0l);
        mov32 (reg Reg.EAX) (imm 43l);
        mov32 (reg Reg.ECX) (imm 5l);
        Insn.Div (Insn.S32bit, reg Reg.ECX);
        Insn.Int3;
      ]
  in
  check_reg emu Reg.EAX 8l;
  check_reg emu Reg.EDX 3l

let test_div_by_zero_faults () =
  let _, outcome =
    run_program
      [
        arith Insn.Xor (reg Reg.EBX) (reg Reg.EBX);
        mov32 (reg Reg.EAX) (imm 1l);
        Insn.Div (Insn.S32bit, reg Reg.EBX);
      ]
  in
  match outcome with
  | Emulator.Halted "divide error" -> ()
  | _ -> Alcotest.fail "expected divide error"

let test_movzx_movsx () =
  let emu, _ =
    run_program
      [
        mov32 (reg Reg.EBX) (imm 0xFFFFFF85l);
        Insn.Movzx (Reg.EAX, Insn.Reg8 Reg.BL);
        Insn.Movsx (Reg.EDX, Insn.Reg8 Reg.BL);
        Insn.Int3;
      ]
  in
  check_reg emu Reg.EAX 0x85l;
  check_reg emu Reg.EDX 0xFFFFFF85l

let test_imul3 () =
  let emu, _ =
    run_program
      [ mov32 (reg Reg.EBX) (imm 10l); Insn.Imul3 (Reg.EAX, reg Reg.EBX, (-3l)); Insn.Int3 ]
  in
  check_reg emu Reg.EAX (-30l)

let test_syscall_surfaces () =
  let emu, outcome =
    run_program [ mov32 (reg Reg.EAX) (imm 11l); Insn.Int 0x80 ]
  in
  (match outcome with
  | Emulator.Syscall 0x80 -> ()
  | _ -> Alcotest.fail "expected syscall outcome");
  check_reg emu Reg.EAX 11l

let test_fault_on_wild_access () =
  let _, outcome = run_program [ mov32 (reg Reg.EAX) (Insn.Mem (Insn.mem_abs 4l)) ] in
  match outcome with
  | Emulator.Halted _ -> ()
  | _ -> Alcotest.fail "expected fault"

(* ------------------------------------------------------------------ *)
(* decoder validation: the engines' output really decodes *)

let payload = (Sanids_exploits.Shellcodes.find "classic").Sanids_exploits.Shellcodes.code

let validate_decoder code ~payload_off ~payload_len =
  let emu = Emulator.create ~code () in
  let payload_addr = Int32.add Emulator.code_base (Int32.of_int payload_off) in
  (* phase 1: run until execution enters the decoded payload *)
  let outcome, _ = Emulator.run ~max_steps:200_000 ~stop_at:payload_addr emu in
  (match outcome with
  | Emulator.Running when Int32.equal (Emulator.eip emu) payload_addr -> ()
  | Emulator.Running -> Alcotest.fail "ran out of budget before reaching payload"
  | Emulator.Syscall _ -> Alcotest.fail "unexpected syscall during decoding"
  | Emulator.Halted m -> Alcotest.failf "decoder halted: %s" m);
  (* the payload must be reconstructed in memory, byte for byte *)
  let decoded = read_mem emu payload_addr payload_len in
  Alcotest.(check string) "payload reconstructed" payload decoded;
  (* phase 2: the decoded shellcode itself runs to execve *)
  let outcome, _ = Emulator.run ~max_steps:10_000 emu in
  match outcome with
  | Emulator.Syscall 0x80 ->
      Alcotest.(check int32) "EAX = 11 (execve)" 11l (Emulator.reg emu Reg.EAX)
  | Emulator.Syscall n -> Alcotest.failf "wrong syscall vector 0x%x" n
  | Emulator.Running -> Alcotest.fail "payload never reached its syscall"
  | Emulator.Halted m -> Alcotest.failf "payload crashed: %s" m

let test_xor_decoders_execute () =
  let rng = Rng.create 0xE11E_0001L in
  for _ = 1 to 60 do
    let g = Admmutate.generate ~family:Admmutate.Xor_loop rng ~payload in
    validate_decoder g.Admmutate.code ~payload_off:g.Admmutate.payload_off
      ~payload_len:g.Admmutate.payload_len
  done

let test_alt_decoders_execute () =
  let rng = Rng.create 0xE11E_0002L in
  for _ = 1 to 60 do
    let g = Admmutate.generate ~family:Admmutate.Alt_chain rng ~payload in
    validate_decoder g.Admmutate.code ~payload_off:g.Admmutate.payload_off
      ~payload_len:g.Admmutate.payload_len
  done

let test_clet_decoders_execute () =
  let rng = Rng.create 0xE11E_0003L in
  for _ = 1 to 30 do
    let g = Clet.generate rng ~payload in
    (* clet appends shaped padding after the payload; recover the layout
       from the embedded admmutate structure: payload sits right before
       the padding *)
    let body_len = String.length g.Clet.code - g.Clet.pad_len in
    let payload_off = body_len - String.length payload in
    validate_decoder g.Clet.code ~payload_off ~payload_len:(String.length payload)
  done

let test_all_eight_shellcodes_execute () =
  (* each corpus entry, executed directly, reaches execve with EAX=11;
     binders reach their socketcall first *)
  List.iter
    (fun (e : Sanids_exploits.Shellcodes.entry) ->
      let emu = Emulator.create ~code:e.Sanids_exploits.Shellcodes.code () in
      let rec drive guard =
        if guard = 0 then Alcotest.failf "%s: too many syscalls" e.Sanids_exploits.Shellcodes.name
        else
          match Emulator.run ~max_steps:50_000 emu with
          | Emulator.Syscall 0x80, _ ->
              let eax = Int32.logand (Emulator.reg emu Reg.EAX) 0xFFl in
              if Int32.equal eax 11l then () (* reached execve *)
              else begin
                (* fake a kernel return value and keep going *)
                Emulator.set_reg emu Reg.EAX 3l;
                drive (guard - 1)
              end
          | Emulator.Syscall n, _ ->
              Alcotest.failf "%s: unexpected vector 0x%x" e.Sanids_exploits.Shellcodes.name n
          | Emulator.Halted m, _ ->
              Alcotest.failf "%s: halted: %s" e.Sanids_exploits.Shellcodes.name m
          | Emulator.Running, _ ->
              Alcotest.failf "%s: never reached execve" e.Sanids_exploits.Shellcodes.name
      in
      drive 16)
    Sanids_exploits.Shellcodes.all

(* ------------------------------------------------------------------ *)
(* abstraction soundness: Constprop agrees with concrete execution *)

let gen_safe_insn =
  (* straight-line register/stack programs: no memory, no branches *)
  let open QCheck2.Gen in
  let reg_g = oneofl [ Reg.EAX; Reg.EBX; Reg.ECX; Reg.EDX; Reg.ESI; Reg.EDI ] in
  let reg8_g = oneofl [ Reg.AL; Reg.BL; Reg.CL; Reg.DL; Reg.AH; Reg.BH ] in
  let imm_g = map Int32.of_int (int_range (-100000) 100000) in
  let imm8_g = map Int32.of_int (int_range 0 255) in
  oneof
    [
      (let* r = reg_g and* v = imm_g in
       return (mov32 (reg r) (imm v)));
      (let* a = reg_g and* b = reg_g in
       return (mov32 (reg a) (reg b)));
      (let* r = reg8_g and* v = imm8_g in
       return (Insn.Mov (Insn.S8bit, Insn.Reg8 r, imm v)));
      (let* op = oneofl [ Insn.Add; Insn.Sub; Insn.And; Insn.Or; Insn.Xor ]
       and* r = reg_g and* v = imm_g in
       return (arith op (reg r) (imm v)));
      (let* op = oneofl [ Insn.Add; Insn.Sub; Insn.And; Insn.Or; Insn.Xor ]
       and* a = reg_g and* b = reg_g in
       return (arith op (reg a) (reg b)));
      (let* op = oneofl [ Insn.Add; Insn.Sub; Insn.Xor ]
       and* r = reg8_g and* v = imm8_g in
       return (Insn.Arith (op, Insn.S8bit, Insn.Reg8 r, imm v)));
      (let* r = reg_g in
       return (Insn.Not (Insn.S32bit, reg r)));
      (let* r = reg_g in
       return (Insn.Neg (Insn.S32bit, reg r)));
      (let* r = reg_g in
       return (Insn.Inc (Insn.S32bit, reg r)));
      (let* r = reg_g in
       return (Insn.Dec (Insn.S32bit, reg r)));
      (let* op = oneofl [ Insn.Shl; Insn.Shr; Insn.Sar; Insn.Rol; Insn.Ror ]
       and* r = reg_g and* n = int_range 1 31 in
       return (Insn.Shift (op, Insn.S32bit, reg r, n)));
      (let* op = oneofl [ Insn.Shl; Insn.Shr; Insn.Sar; Insn.Rol; Insn.Ror ]
       and* r = reg8_g and* n = int_range 1 31 in
       return (Insn.Shift (op, Insn.S8bit, Insn.Reg8 r, n)));
      (let* d = reg_g and* s = reg8_g in
       return (Insn.Movzx (d, Insn.Reg8 s)));
      (let* d = reg_g and* s = reg8_g in
       return (Insn.Movsx (d, Insn.Reg8 s)));
      (let* a = reg_g and* b = reg_g in
       return (Insn.Xchg (a, b)));
      (let* v = imm_g in
       return (Insn.Push_imm v));
      (let* r = reg_g in
       return (Insn.Push_reg r));
      (let* r = reg_g in
       return (Insn.Pop_reg r));
      (let* r = reg_g and* b = reg_g and* d = imm_g in
       return (Insn.Lea (r, Insn.mem_base_disp b d)));
    ]

let prop_constprop_sound =
  QCheck2.Test.make ~name:"constprop sound wrt emulator" ~count:500
    ~print:(fun is -> Pretty.program_to_string is)
    QCheck2.Gen.(list_size (int_range 1 25) gen_safe_insn)
    (fun insns ->
      (* pops must not outnumber pushes, or the program reads the
         uninitialized stack which constprop rightly does not model *)
      let balanced =
        let ok = ref true and depth = ref 0 in
        List.iter
          (fun i ->
            match i with
            | Insn.Push_imm _ | Insn.Push_reg _ -> incr depth
            | Insn.Pop_reg _ ->
                if !depth = 0 then ok := false else decr depth
            | _ -> ())
          insns;
        !ok
      in
      QCheck2.assume balanced;
      let insns = insns @ [ Insn.Int3 ] in
      let emu = Emulator.create ~code:(Encode.program insns) () in
      let _ = Emulator.run emu in
      let abstract =
        List.fold_left
          (fun st i -> Sanids_ir.Constprop.step_insn st i)
          Sanids_ir.Constprop.initial insns
      in
      List.for_all
        (fun r ->
          (* ESP differs (constprop does not track it); skip it *)
          if Reg.equal r Reg.ESP then true
          else
            match Sanids_ir.Constprop.reg32 abstract r with
            | Some v -> Int32.equal v (Emulator.reg emu r)
            | None -> true)
        [ Reg.EAX; Reg.EBX; Reg.ECX; Reg.EDX; Reg.ESI; Reg.EDI ])

let prop_low8_sound =
  QCheck2.Test.make ~name:"constprop low-byte knowledge sound" ~count:300
    QCheck2.Gen.(list_size (int_range 1 20) gen_safe_insn)
    (fun insns ->
      let has_pop = List.exists (function Insn.Pop_reg _ -> true | _ -> false) insns in
      QCheck2.assume (not has_pop);
      let insns = insns @ [ Insn.Int3 ] in
      let emu = Emulator.create ~code:(Encode.program insns) () in
      let _ = Emulator.run emu in
      let abstract =
        List.fold_left
          (fun st i -> Sanids_ir.Constprop.step_insn st i)
          Sanids_ir.Constprop.initial insns
      in
      List.for_all
        (fun r ->
          match Sanids_ir.Constprop.reg_low8 abstract r with
          | Some b -> Int32.to_int (Int32.logand (Emulator.reg emu r) 0xFFl) = b
          | None -> true)
        [ Reg.EAX; Reg.EBX; Reg.ECX; Reg.EDX ])

(* metamorphic rewriting preserves concrete register state on arbitrary
   branch-free programs *)
let prop_metamorph_equivalent =
  QCheck2.Test.make ~name:"metamorph preserves final register state" ~count:300
    ~print:(fun (is, _) -> Pretty.program_to_string is)
    QCheck2.Gen.(pair (list_size (int_range 1 20) gen_safe_insn) int64)
    (fun (insns, seed) ->
      let balanced =
        let ok = ref true and depth = ref 0 in
        List.iter
          (fun i ->
            match i with
            | Insn.Push_imm _ | Insn.Push_reg _ -> incr depth
            | Insn.Pop_reg _ -> if !depth = 0 then ok := false else decr depth
            | _ -> ())
          insns;
        !ok
      in
      QCheck2.assume balanced;
      let rng = Rng.create seed in
      (* junk-free mutation must preserve every register; junky mutation
         must preserve the registers the original program touches (junk
         may scribble on dead ones — that is its purpose) *)
      let mutant_clean = Sanids_polymorph.Metamorph.mutate ~junk:0 (Rng.copy rng) insns in
      let mutant_junky = Sanids_polymorph.Metamorph.mutate rng insns in
      let all_regs = [ Reg.EAX; Reg.EBX; Reg.ECX; Reg.EDX; Reg.ESI; Reg.EDI ] in
      let touched =
        List.filter
          (fun r ->
            List.exists
              (fun i ->
                List.exists (Reg.equal r)
                  (List.concat_map Sanids_ir.Sem.writes (Sanids_ir.Sem.lift i)))
              insns)
          all_regs
      in
      let run regs prog =
        let emu = Emulator.create ~code:(Encode.program (prog @ [ Insn.Int3 ])) () in
        let _ = Emulator.run emu in
        List.map (Emulator.reg emu) regs
      in
      run all_regs insns = run all_regs mutant_clean
      && run touched insns = run touched mutant_junky)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [ prop_constprop_sound; prop_low8_sound; prop_metamorph_equivalent ]

let () =
  Alcotest.run "emulator"
    [
      ( "semantics",
        [
          Alcotest.test_case "mov/arith" `Quick test_mov_and_arith;
          Alcotest.test_case "zero/sign flags" `Quick test_flags_zero_sign;
          Alcotest.test_case "carry" `Quick test_carry_unsigned;
          Alcotest.test_case "stack" `Quick test_push_pop_stack;
          Alcotest.test_case "memory" `Quick test_memory_store_load;
          Alcotest.test_case "loop" `Quick test_loop_counts;
          Alcotest.test_case "call/ret" `Quick test_call_ret;
          Alcotest.test_case "cond branches" `Quick test_cond_branches;
          Alcotest.test_case "string ops" `Quick test_string_ops;
          Alcotest.test_case "self-modifying code" `Quick test_self_modifying_code;
          Alcotest.test_case "rep stosb" `Quick test_rep_stos_fill;
          Alcotest.test_case "rep movsb" `Quick test_rep_movs_copy;
          Alcotest.test_case "mul/div" `Quick test_mul_div;
          Alcotest.test_case "div by zero" `Quick test_div_by_zero_faults;
          Alcotest.test_case "movzx/movsx" `Quick test_movzx_movsx;
          Alcotest.test_case "imul3" `Quick test_imul3;
          Alcotest.test_case "syscall surfaces" `Quick test_syscall_surfaces;
          Alcotest.test_case "wild access faults" `Quick test_fault_on_wild_access;
        ] );
      ( "decoder validation",
        [
          Alcotest.test_case "xor decoders execute" `Slow test_xor_decoders_execute;
          Alcotest.test_case "alt decoders execute" `Slow test_alt_decoders_execute;
          Alcotest.test_case "clet decoders execute" `Slow test_clet_decoders_execute;
          Alcotest.test_case "all eight shellcodes execute" `Quick
            test_all_eight_shellcodes_execute;
        ] );
      ("abstraction soundness", properties);
    ]
