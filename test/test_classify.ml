(* Direct unit tests for the traffic-classification components (paper
   §4.1) plus the smaller NIDS support modules. *)

open Sanids_net
open Sanids_classify

let ip = Ipaddr.of_string

(* ------------------------------------------------------------------ *)
(* honeypot registry *)

let test_honeypot_marking () =
  let h = Honeypot.create [ ip "10.0.0.9" ] in
  Alcotest.(check bool) "decoy known" true (Honeypot.is_honeypot h (ip "10.0.0.9"));
  Alcotest.(check bool) "other not decoy" false (Honeypot.is_honeypot h (ip "10.0.0.1"));
  (* touching the decoy marks the source, permanently *)
  Alcotest.(check bool) "first touch marks" true
    (Honeypot.observe h ~src:(ip "1.2.3.4") ~dst:(ip "10.0.0.9"));
  Alcotest.(check bool) "marked on later benign traffic" true
    (Honeypot.observe h ~src:(ip "1.2.3.4") ~dst:(ip "10.0.0.1"));
  Alcotest.(check bool) "others unmarked" false
    (Honeypot.observe h ~src:(ip "5.6.7.8") ~dst:(ip "10.0.0.1"));
  Alcotest.(check int) "one marked source" 1 (Honeypot.marked_count h)

let test_honeypot_add_dynamic () =
  let h = Honeypot.create [] in
  Alcotest.(check bool) "no decoys yet" false
    (Honeypot.observe h ~src:(ip "1.1.1.1") ~dst:(ip "10.0.0.9"));
  Honeypot.add h (ip "10.0.0.9");
  Alcotest.(check bool) "now a decoy" true
    (Honeypot.observe h ~src:(ip "1.1.1.1") ~dst:(ip "10.0.0.9"))

(* ------------------------------------------------------------------ *)
(* scan detector *)

let unused = [ Ipaddr.prefix_of_string "192.0.2.0/24" ]

let test_scan_distinct_addresses () =
  let s = Scan_detector.create ~threshold:3 unused in
  let src = ip "8.8.8.8" in
  (* the same unused address repeatedly is ONE distinct touch *)
  for _ = 1 to 10 do
    ignore (Scan_detector.observe s ~src ~dst:(ip "192.0.2.1"))
  done;
  Alcotest.(check int) "one distinct" 1 (Scan_detector.count s src);
  Alcotest.(check bool) "not flagged" false (Scan_detector.is_scanner s src);
  ignore (Scan_detector.observe s ~src ~dst:(ip "192.0.2.2"));
  ignore (Scan_detector.observe s ~src ~dst:(ip "192.0.2.3"));
  Alcotest.(check bool) "flagged at threshold" true (Scan_detector.is_scanner s src)

let test_scan_used_space_ignored () =
  let s = Scan_detector.create ~threshold:2 unused in
  let src = ip "8.8.4.4" in
  for k = 1 to 20 do
    ignore (Scan_detector.observe s ~src ~dst:(Ipaddr.of_octets 10 0 0 k))
  done;
  Alcotest.(check int) "used space never counts" 0 (Scan_detector.count s src);
  Alcotest.(check bool) "never flagged" false (Scan_detector.is_scanner s src)

let test_scan_flag_sticks () =
  let s = Scan_detector.create ~threshold:2 unused in
  let src = ip "9.9.9.9" in
  ignore (Scan_detector.observe s ~src ~dst:(ip "192.0.2.10"));
  ignore (Scan_detector.observe s ~src ~dst:(ip "192.0.2.11"));
  (* a later packet to used space still reports the flag *)
  Alcotest.(check bool) "flag visible on used-space traffic" true
    (Scan_detector.observe s ~src ~dst:(ip "10.1.1.1"));
  Alcotest.(check int) "one scanner" 1 (Scan_detector.scanner_count s)

let test_scan_threshold_validation () =
  match Scan_detector.create ~threshold:0 unused with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "threshold 0 must be rejected"

(* ------------------------------------------------------------------ *)
(* combined classifier *)

let packet ~src ~dst =
  Packet.build_tcp ~ts:0.0 ~src ~dst ~src_port:1024 ~dst_port:80 "x"

let test_classifier_reasons () =
  let c =
    Classifier.create ~honeypots:[ ip "10.0.0.9" ]
      ~unused:[ Ipaddr.prefix_of_string "192.0.2.0/24" ]
      ~scan_threshold:2 ()
  in
  Alcotest.(check bool) "benign by default" true
    (Classifier.classify c (packet ~src:(ip "1.1.1.1") ~dst:(ip "10.0.0.1"))
    = Classifier.Benign);
  ignore (Classifier.classify c (packet ~src:(ip "2.2.2.2") ~dst:(ip "10.0.0.9")));
  Alcotest.(check bool) "honeypot reason" true
    (Classifier.classify c (packet ~src:(ip "2.2.2.2") ~dst:(ip "10.0.0.1"))
    = Classifier.Suspicious Classifier.Honeypot_sender);
  ignore (Classifier.classify c (packet ~src:(ip "3.3.3.3") ~dst:(ip "192.0.2.1")));
  ignore (Classifier.classify c (packet ~src:(ip "3.3.3.3") ~dst:(ip "192.0.2.2")));
  Alcotest.(check bool) "scanner reason" true
    (Classifier.classify c (packet ~src:(ip "3.3.3.3") ~dst:(ip "10.0.0.1"))
    = Classifier.Suspicious Classifier.Scanner)

let test_classifier_disabled_keeps_state () =
  (* state accrues while disabled, so the verdict is immediate if the
     deployment is re-created with the same components *)
  let c = Classifier.create ~honeypots:[ ip "10.0.0.9" ] ~enabled:false () in
  (match Classifier.classify c (packet ~src:(ip "4.4.4.4") ~dst:(ip "10.0.0.9")) with
  | Classifier.Suspicious Classifier.Classification_disabled -> ()
  | _ -> Alcotest.fail "disabled classifier analyzes everything");
  Alcotest.(check bool) "honeypot state accrued" true
    (Honeypot.is_marked (Classifier.honeypot c) (ip "4.4.4.4"))

let test_reason_strings () =
  Alcotest.(check string) "honeypot" "honeypot-sender"
    (Classifier.reason_to_string Classifier.Honeypot_sender);
  Alcotest.(check string) "scanner" "scanner"
    (Classifier.reason_to_string Classifier.Scanner)

(* ------------------------------------------------------------------ *)
(* support modules *)

let test_stats_snapshot_view () =
  let module Obs = Sanids_obs in
  let module Stats = Sanids_nids.Stats in
  let reg = Obs.Registry.create () in
  Obs.Registry.add (Obs.Registry.counter reg "sanids_packets_total") 7;
  Obs.Registry.add (Obs.Registry.counter reg "sanids_alerts_total") 3;
  let s = Stats.of_snapshot (Obs.Registry.snapshot reg) in
  Alcotest.(check int) "packets from registry" 7 s.Stats.packets;
  Alcotest.(check int) "alerts from registry" 3 s.Stats.alerts;
  Alcotest.(check int) "absent metric reads zero" 0 s.Stats.frames;
  Alcotest.(check bool) "zero is empty view" true
    (Stats.of_snapshot Obs.Snapshot.empty = Stats.zero)

let test_config_builders () =
  let open Sanids_nids in
  let cfg =
    Config.default
    |> Config.with_honeypots [ ip "10.0.0.9" ]
    |> Config.with_unused [ Ipaddr.prefix_of_string "192.0.2.0/24" ]
    |> Config.with_classification false
    |> Config.with_extraction false
    |> Config.with_reassembly true
  in
  Alcotest.(check int) "honeypots" 1 (List.length cfg.Config.honeypots);
  Alcotest.(check bool) "classification" false cfg.Config.classification_enabled;
  Alcotest.(check bool) "extraction" false cfg.Config.extraction_enabled;
  Alcotest.(check bool) "reassembly" true cfg.Config.reassemble

let test_config_validate () =
  let open Sanids_nids in
  let cfg =
    Config.default
    |> Config.with_scan_threshold 3
    |> Config.with_min_payload 8
    |> Config.with_verdict_cache 128
    |> Config.with_flow_alert_cache 256
  in
  (match Config.validate cfg with
  | Ok c ->
      Alcotest.(check int) "scan threshold kept" 3 c.Config.scan_threshold;
      Alcotest.(check int) "flow cache kept" 256 c.Config.flow_alert_cache_size
  | Error e -> Alcotest.failf "valid config rejected: %s" e);
  let rejected c = match Config.validate c with Ok _ -> false | Error _ -> true in
  Alcotest.(check bool) "scan_threshold 0 rejected" true
    (rejected (Config.default |> Config.with_scan_threshold 0));
  Alcotest.(check bool) "negative verdict cache rejected" true
    (rejected { Config.default with Config.verdict_cache_size = -1 });
  Alcotest.(check bool) "flow cache 0 rejected" true
    (rejected { Config.default with Config.flow_alert_cache_size = 0 });
  Alcotest.(check bool) "negative min_payload rejected" true
    (rejected { Config.default with Config.min_payload = -4 });
  (* Pipeline.create refuses what validate refuses *)
  match Pipeline.create (Config.default |> Config.with_scan_threshold (-2)) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "Pipeline.create must reject invalid configs"

let test_template_guards () =
  let open Sanids_semantic.Template in
  let consts = [ ("k", 5l); ("m", 0l) ] in
  Alcotest.(check bool) "nonzero sat" true (check_guard consts (Nonzero "k"));
  Alcotest.(check bool) "nonzero fail" false (check_guard consts (Nonzero "m"));
  Alcotest.(check bool) "equals" true (check_guard consts (Equals ("k", 5l)));
  Alcotest.(check bool) "one_of" true (check_guard consts (One_of ("k", [ 1l; 5l ])));
  Alcotest.(check bool) "one_of fail" false (check_guard consts (One_of ("k", [ 1l; 2l ])));
  Alcotest.(check bool) "differ" true (check_guard consts (Differ ("k", "m")));
  Alcotest.(check bool) "unbound fails" false (check_guard consts (Nonzero "zz"))

let test_template_make_validation () =
  match Sanids_semantic.Template.make ~name:"x" ~description:"" [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty template must be rejected"

let test_template_names () =
  let names = Sanids_semantic.Template_lib.names Sanids_semantic.Template_lib.default_set in
  Alcotest.(check (list string))
    "shipped names"
    [
      "decrypt-loop"; "alt-decoder"; "shell-spawn"; "port-bind-shell";
      "connect-back-shell"; "slammer"; "mass-mailer"; "code-red-ii";
    ]
    names

let () =
  Alcotest.run "classify"
    [
      ( "honeypot",
        [
          Alcotest.test_case "marking" `Quick test_honeypot_marking;
          Alcotest.test_case "dynamic add" `Quick test_honeypot_add_dynamic;
        ] );
      ( "scan-detector",
        [
          Alcotest.test_case "distinct addresses" `Quick test_scan_distinct_addresses;
          Alcotest.test_case "used space ignored" `Quick test_scan_used_space_ignored;
          Alcotest.test_case "flag sticks" `Quick test_scan_flag_sticks;
          Alcotest.test_case "threshold validation" `Quick test_scan_threshold_validation;
        ] );
      ( "classifier",
        [
          Alcotest.test_case "reasons" `Quick test_classifier_reasons;
          Alcotest.test_case "disabled keeps state" `Quick test_classifier_disabled_keeps_state;
          Alcotest.test_case "reason strings" `Quick test_reason_strings;
        ] );
      ( "support",
        [
          Alcotest.test_case "stats snapshot view" `Quick test_stats_snapshot_view;
          Alcotest.test_case "config builders" `Quick test_config_builders;
          Alcotest.test_case "config validate" `Quick test_config_validate;
          Alcotest.test_case "template guards" `Quick test_template_guards;
          Alcotest.test_case "template validation" `Quick test_template_make_validation;
          Alcotest.test_case "shipped template names" `Quick test_template_names;
        ] );
    ]
