(* Tests for capabilities beyond the paper's evaluation: TCP-stream
   reassembly in the pipeline (anti-fragmentation), the connect-back
   template with socketcall-subcall constraints, and the emulator-backed
   behavioural ground truth for the extended corpus. *)

open Sanids_net
open Sanids_x86
open Sanids_nids
open Sanids_semantic
open Sanids_exploits
module Admmutate_alias = Sanids_polymorph.Admmutate

let ip = Ipaddr.of_string
let attacker = ip "203.0.113.66"
let victim = ip "10.0.0.80"

let satisfies_any templates code =
  List.exists (fun t -> Matcher.satisfies t code) templates

(* ------------------------------------------------------------------ *)
(* fragmentation evasion *)

let exploit_payload () =
  let rng = Rng.create 42L in
  Exploit_gen.http_exploit rng ~shellcode:(Shellcodes.find "classic").Shellcodes.code

let fragments payload k =
  (* split into k roughly equal TCP segments of one flow *)
  let n = String.length payload in
  let piece i =
    let lo = i * n / k in
    let hi = (i + 1) * n / k in
    (Int32.add 1000l (Int32.of_int lo), String.sub payload lo (hi - lo))
  in
  List.init k (fun i ->
      let seq, data = piece i in
      Packet.build_tcp ~ts:(0.1 *. float_of_int i) ~src:attacker ~dst:victim
        ~src_port:3127 ~dst_port:80 ~seq data)

let test_fragmented_exploit_evades_per_packet () =
  let cfg = Config.default |> Config.with_classification false in
  let nids = Pipeline.create cfg in
  let alerts = Pipeline.process_packets nids (fragments (exploit_payload ()) 16) in
  Alcotest.(check int) "per-packet pipeline misses the split exploit" 0
    (List.length alerts)

let test_reassembly_defeats_fragmentation () =
  let cfg =
    Config.default |> Config.with_classification false |> Config.with_reassembly true
  in
  let nids = Pipeline.create cfg in
  let alerts = Pipeline.process_packets nids (fragments (exploit_payload ()) 16) in
  Alcotest.(check bool) "stream mode detects it" true
    (List.exists (fun a -> a.Alert.template = "shell-spawn") alerts)

let test_reassembly_no_duplicate_alerts () =
  let cfg =
    Config.default |> Config.with_classification false |> Config.with_reassembly true
  in
  let nids = Pipeline.create cfg in
  (* deliver, then retransmit everything: alerts must not double *)
  let frags = fragments (exploit_payload ()) 16 in
  let first = Pipeline.process_packets nids frags in
  let again = Pipeline.process_packets nids frags in
  Alcotest.(check bool) "alerted once" true
    (List.length (List.filter (fun a -> a.Alert.template = "shell-spawn") first) = 1);
  Alcotest.(check int) "no duplicate alert on retransmit" 0 (List.length again)

let test_out_of_order_delivery () =
  let cfg =
    Config.default |> Config.with_classification false |> Config.with_reassembly true
  in
  let nids = Pipeline.create cfg in
  let frags = fragments (exploit_payload ()) 4 in
  let shuffled = match frags with [ a; b; c; d ] -> [ a; d; c; b ] | l -> l in
  let alerts = Pipeline.process_packets nids shuffled in
  Alcotest.(check bool) "out-of-order segments still detected" true
    (List.exists (fun a -> a.Alert.template = "shell-spawn") alerts)

let test_single_packet_still_works_in_stream_mode () =
  let cfg =
    Config.default |> Config.with_classification false |> Config.with_reassembly true
  in
  let nids = Pipeline.create cfg in
  let rng = Rng.create 43L in
  let pkt =
    Exploit_gen.packet rng ~ts:0.0 ~src:attacker ~dst:victim
      ~shellcode:(Shellcodes.find "classic").Shellcodes.code
  in
  Alcotest.(check bool) "whole exploit in one packet" true
    (Pipeline.process_packet nids pkt <> [])

(* ------------------------------------------------------------------ *)
(* connect-back template and subcall constraints *)

let reverse = (Shellcodes.find "reverse-4444").Shellcodes.code
let binder = (Shellcodes.find "bind-4444").Shellcodes.code

let test_reverse_shell_detected () =
  Alcotest.(check bool) "connect-back template fires" true
    (satisfies_any Template_lib.connect_back_shell reverse)

let test_reverse_shell_is_not_a_binder () =
  Alcotest.(check bool) "port-bind template stays quiet" false
    (satisfies_any Template_lib.port_bind_shell reverse)

let test_binder_is_not_connect_back () =
  Alcotest.(check bool) "connect-back quiet on binder" false
    (satisfies_any Template_lib.connect_back_shell binder);
  Alcotest.(check bool) "port-bind still fires on binder" true
    (satisfies_any Template_lib.port_bind_shell binder)

let test_reverse_shell_spawns_shell_too () =
  Alcotest.(check bool) "generic shell-spawn also fires" true
    (satisfies_any Template_lib.shell_spawn reverse)

let test_subcall_constraint_enforced () =
  (* a lone socket() call must not satisfy a template demanding connect *)
  let socket_only =
    Sanids_x86.Encode.program
      [
        Insn.Arith (Insn.Xor, Insn.S32bit, Insn.Reg Reg.EBX, Insn.Reg Reg.EBX);
        Insn.Mov (Insn.S8bit, Insn.Reg8 Reg.BL, Insn.Imm 1l);
        Insn.Arith (Insn.Xor, Insn.S32bit, Insn.Reg Reg.EAX, Insn.Reg Reg.EAX);
        Insn.Mov (Insn.S8bit, Insn.Reg8 Reg.AL, Insn.Imm 102l);
        Insn.Int 0x80;
      ]
  in
  Alcotest.(check bool) "socket alone is not a reverse shell" false
    (satisfies_any Template_lib.connect_back_shell socket_only)

let test_reverse_shell_executes () =
  (* dynamic ground truth: the reverse shell's syscall chain is
     socket(1), connect(3), dup2 x3, execve *)
  let emu = Sanids_x86.Emulator.create ~code:reverse () in
  let subcalls = ref [] in
  let rec drive guard =
    if guard = 0 then Alcotest.fail "too many syscalls"
    else
      match Sanids_x86.Emulator.run ~max_steps:50_000 emu with
      | Sanids_x86.Emulator.Syscall 0x80, _ ->
          let eax = Int32.logand (Sanids_x86.Emulator.reg emu Reg.EAX) 0xFFl in
          let ebx = Int32.logand (Sanids_x86.Emulator.reg emu Reg.EBX) 0xFFl in
          subcalls := (Int32.to_int eax, Int32.to_int ebx) :: !subcalls;
          if Int32.equal eax 11l then ()
          else begin
            Sanids_x86.Emulator.set_reg emu Reg.EAX 5l;
            drive (guard - 1)
          end
      | Sanids_x86.Emulator.Halted m, _ -> Alcotest.failf "halted: %s" m
      | _, _ -> Alcotest.fail "lost"
  in
  drive 16;
  match List.rev !subcalls with
  | (102, 1) :: (102, 3) :: rest ->
      let dup2s = List.filter (fun (ax, _) -> ax = 63) rest in
      Alcotest.(check int) "three dup2 calls" 3 (List.length dup2s);
      Alcotest.(check bool) "ends in execve" true
        (match List.rev rest with (11, _) :: _ -> true | _ -> false)
  | _ -> Alcotest.fail "wrong syscall chain prefix"

(* ------------------------------------------------------------------ *)
(* multi-stage encoding *)

let classic = (Shellcodes.find "classic").Shellcodes.code

let test_staged_detected () =
  let rng = Rng.create 0x57A6_0001L in
  let missed = ref 0 in
  for _ = 1 to 30 do
    let g = Admmutate_alias.generate_staged ~stages:2 rng ~payload:classic in
    if
      Matcher.scan
        ~templates:(Template_lib.xor_decrypt @ Template_lib.alt_decoder)
        g.Sanids_polymorph.Admmutate.code
      = []
    then incr missed
  done;
  Alcotest.(check int) "every double-encoded instance detected" 0 !missed

let test_staged_executes () =
  (* the emulator unwraps both stages and reaches execve *)
  let rng = Rng.create 0x57A6_0002L in
  for _ = 1 to 15 do
    let g = Admmutate_alias.generate_staged ~stages:2 rng ~payload:classic in
    let emu = Emulator.create ~code:g.Sanids_polymorph.Admmutate.code () in
    match Emulator.run ~max_steps:500_000 emu with
    | Emulator.Syscall 0x80, _ ->
        Alcotest.(check int32) "execve" 11l
          (Int32.logand (Emulator.reg emu Reg.EAX) 0xFFl)
    | Emulator.Halted m, _ -> Alcotest.failf "staged instance crashed: %s" m
    | _, _ -> Alcotest.fail "staged instance never reached its syscall"
  done

let test_staged_hides_inner_decoder_bytes () =
  (* the inner stage's bytes must not appear in the outer ciphertext *)
  let rng = Rng.create 0x57A6_0003L in
  let inner = Admmutate_alias.generate ~junk:2 rng ~payload:classic in
  let outer =
    Admmutate_alias.generate ~junk:2 rng ~payload:inner.Sanids_polymorph.Admmutate.code
  in
  let cipher =
    String.sub outer.Sanids_polymorph.Admmutate.code
      outer.Sanids_polymorph.Admmutate.payload_off
      outer.Sanids_polymorph.Admmutate.payload_len
  in
  Alcotest.(check bool) "inner hidden" true
    (cipher <> inner.Sanids_polymorph.Admmutate.code)

(* ------------------------------------------------------------------ *)
(* the extended default set keeps its zero-FP property *)

let test_default_set_quiet_on_benign () =
  let rng = Rng.create 44L in
  for _ = 1 to 150 do
    let p = Sanids_workload.Benign_gen.payload rng in
    if Matcher.scan ~templates:Template_lib.default_set p <> [] then
      Alcotest.fail "extended template set false-positived on benign payload"
  done

let () =
  Alcotest.run "extensions"
    [
      ( "reassembly",
        [
          Alcotest.test_case "fragmentation evades per-packet" `Quick
            test_fragmented_exploit_evades_per_packet;
          Alcotest.test_case "reassembly defeats it" `Quick
            test_reassembly_defeats_fragmentation;
          Alcotest.test_case "no duplicate alerts" `Quick test_reassembly_no_duplicate_alerts;
          Alcotest.test_case "out of order delivery" `Quick test_out_of_order_delivery;
          Alcotest.test_case "single packet still works" `Quick
            test_single_packet_still_works_in_stream_mode;
        ] );
      ( "connect-back",
        [
          Alcotest.test_case "reverse shell detected" `Quick test_reverse_shell_detected;
          Alcotest.test_case "not a binder" `Quick test_reverse_shell_is_not_a_binder;
          Alcotest.test_case "binder not connect-back" `Quick test_binder_is_not_connect_back;
          Alcotest.test_case "also a shell-spawn" `Quick test_reverse_shell_spawns_shell_too;
          Alcotest.test_case "subcall constraint" `Quick test_subcall_constraint_enforced;
          Alcotest.test_case "executes correct chain" `Quick test_reverse_shell_executes;
        ] );
      ( "multi-stage",
        [
          Alcotest.test_case "detected" `Quick test_staged_detected;
          Alcotest.test_case "executes through both stages" `Quick test_staged_executes;
          Alcotest.test_case "inner hidden" `Quick test_staged_hides_inner_decoder_bytes;
        ] );
      ( "regression",
        [ Alcotest.test_case "benign quiet" `Quick test_default_set_quiet_on_benign ] );
    ]
