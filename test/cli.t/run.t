The shellcode corpus is stable and complete:

  $ sanids corpus
  classic        24 B  direct pushes, mov al,11
  push-pop       24 B  push/pop constant routing
  math-route     41 B  string and syscall number built arithmetically
  call-pop       35 B  jmp/call/pop string addressing
  stack-store    40 B  string written with stores, dec to 11
  mask-route     32 B  syscall number masked out of a wide constant
  bind-4444     136 B  bind shell on port 4444, unrolled dup2  [binds port]
  bind-31337    121 B  bind shell on port 31337, looped dup2  [binds port]

The shipped template set names every behaviour:

  $ sanids templates | awk '{print $1}' | sort -u
  alt-decoder
  code-red-ii
  connect-back-shell
  decrypt-loop
  mass-mailer
  port-bind-shell
  shell-spawn
  slammer

A plain shellcode disassembles and matches:

  $ sanids gen-exploit --shellcode classic -o classic.bin --seed 4
  wrote classic.bin (24 bytes)
  $ sanids disasm classic.bin
  0000: xor eax, eax
  0002: push eax
  0003: push 0x68732f2f
  0008: push 0x6e69622f
  000d: mov ebx, esp
  000f: push eax
  0010: push ebx
  0011: mov ecx, esp
  0013: cdq
  0014: mov al, 0xb
  0016: int 0x80
  $ sanids match classic.bin
  shell-spawn @entry=0x0 offsets=[0x3;0x8;0x16] regs={} consts={}

A polymorphic instance evades nothing semantically:

  $ sanids gen-exploit --shellcode classic --polymorphic -o poly.bin --seed 9
  wrote poly.bin (162 bytes)
  $ sanids match poly.bin | cut -d' ' -f1
  decrypt-loop

And executes correctly in the sandboxed interpreter:

  $ sanids emulate poly.bin | head -n 1 | sed 's/after [0-9]* steps/after N steps/'
  syscall int 0x80 after N steps: eax=0xb ebx=0x8087fd9 ecx=0x8087fd1 edx=0x0

End-to-end over a capture file:

  $ sanids gen-trace trace.pcap --kind codered --packets 500 --seed 3
  ground truth: 521 packets, 3 CRII instances, 18 scans (unused space: 10.2.200.0/21)
  wrote trace.pcap (521 packets)
  $ sanids scan trace.pcap --unused 10.2.200.0/21 | grep -c 'ALERT code-red-ii'
  3

The same scan exports its metrics registry as Prometheus text and its
stage timings as JSONL spans.  Counter values are deterministic on the
seeded trace; timings are not, so the checks are structural:

  $ sanids scan trace.pcap --unused 10.2.200.0/21 \
  >   --metrics scan.prom --trace spans.jsonl --trace-sample 2 > /dev/null
  $ grep -A 1 '^# TYPE sanids_packets_total counter$' scan.prom
  # TYPE sanids_packets_total counter
  sanids_packets_total 521
  $ grep '^sanids_alerts_total ' scan.prom
  sanids_alerts_total 3
  $ grep '^sanids_classify_scanner_total ' scan.prom
  sanids_classify_scanner_total 9
  $ grep -c '^# TYPE sanids_stage_[a-z]*_seconds histogram$' scan.prom
  5

Every line is a comment or a "name value" sample (labeled series
included) — nothing else:

  $ grep -cv -e '^# \(HELP\|TYPE\) [a-zA-Z_:][a-zA-Z0-9_:]* ' \
  >   -e '^[a-zA-Z_:][a-zA-Z0-9_:]*\({[a-zA-Z_]*="[^"]*"}\)\? [0-9.e+-]*$' scan.prom
  0
  [1]

Spans are one JSON object per line, sequentially numbered, and sampling
halves the emission:

  $ head -n 1 spans.jsonl | sed 's/[0-9][0-9.]*/N/g'
  {"span":"classify","ts":N,"dur_us":N,"seq":N}
  $ grep -cv '^{"span":"[a-z]*","ts":[0-9.]*,"dur_us":[0-9.]*,"seq":[0-9]*}$' spans.jsonl
  0
  [1]

The same capture through the multicore stream pipeline finds the same
worm (lossless backpressure is the default policy):

  $ sanids scan trace.pcap --unused 10.2.200.0/21 --stream --domains 2 \
  >   | grep -c 'ALERT code-red-ii'
  3

Fault injection corrupts the capture on the way in; every rejected
record is typed, counted per reason, and the exported accounting
reconciles exactly — records in equals packets analyzed plus ingest
errors plus shed:

  $ sanids scan trace.pcap --unused 10.2.200.0/21 \
  >   --fault truncate=0.2,bitflip=0.15,dup=0.1 --fault-seed 11 \
  >   --metrics fault.prom > /dev/null
  $ grep '^sanids_ingest_records_total ' fault.prom
  sanids_ingest_records_total 573
  $ awk '/^sanids_ingest_records_total /{r=$2} /^sanids_packets_total /{p=$2} \
  >      /^sanids_ingest_errors_total\{/{e+=$2} /^sanids_shed_total\{/{s+=$2} \
  >      END{print (r==p+e+s) ? "reconciled" : "MISMATCH"}' fault.prom
  reconciled

The identity holds under load shedding too:

  $ sanids scan trace.pcap --unused 10.2.200.0/21 --stream --queue 1 \
  >   --drop-policy drop_oldest --metrics shed.prom > /dev/null
  $ awk '/^sanids_ingest_records_total /{r=$2} /^sanids_packets_total /{p=$2} \
  >      /^sanids_ingest_errors_total\{/{e+=$2} /^sanids_shed_total\{/{s+=$2} \
  >      END{print (r==p+e+s) ? "reconciled" : "MISMATCH"}' shed.prom
  reconciled

Exit codes follow sysexits: bad flags or configuration are usage errors
(64), a capture the decoder rejects is bad data (65):

  $ sanids scan trace.pcap --scan-threshold 0
  sanids scan: invalid configuration: scan_threshold must be positive (got 0)
  [64]
  $ sanids scan trace.pcap --drop-policy sometimes 2> /dev/null
  [64]
  $ printf 'not a capture' > junk.pcap
  $ sanids scan junk.pcap
  sanids scan: junk.pcap: pcap_framing: short global header
  [65]
  $ sanids sig-scan junk.pcap
  loaded 10 rules
  sanids sig-scan: junk.pcap: short global header
  [65]

Adversarial load: per-packet budgets truncate runaway analyses instead
of letting them starve the detector, and --degrade answers with the
cheap baseline pattern pass (a jmp maze carries no worm bodies, so the
degraded pass stays quiet).  The stats line accounts for every packet:

  $ sanids gen-trace adv.pcap --kind adversarial --adv-kind jmp_maze \
  >   --packets 40 --payload-size 4096 --seed 5
  wrote adv.pcap (40 packets)
  $ sanids scan adv.pcap --no-classify \
  >   --budget bytes=65536,insns=100,steps=100000,deadline=0 --degrade \
  >   --metrics adv.prom \
  >   | sed 's/.*\(truncated=[0-9]* degraded=[0-9]* breaker_open=[0-9]*\).*/\1/'
  truncated=40 degraded=40 breaker_open=0
  no alerts

The exported families reconcile with the stats line: every analyzed
packet was truncated by the budget and answered by the degraded pass:

  $ awk '/^sanids_budget_truncated_total\{/{t+=$2} /^sanids_degraded_total\{/{d+=$2} \
  >      /^sanids_packets_total /{p=$2} \
  >      END{print (t==p && d==p) ? "reconciled" : "MISMATCH"}' adv.prom
  reconciled

The same flood through the multicore stream pipeline: tight budgets
keep every worker live (the deadline watchdog has nothing to do), every
admitted packet is analyzed, and the accounting still reconciles:

  $ sanids scan adv.pcap --no-classify --stream --domains 2 \
  >   --budget bytes=65536,insns=100,steps=100000,deadline=0.5 --degrade \
  >   --metrics advs.prom | tail -n 1
  no alerts
  $ awk '/^sanids_ingest_records_total /{r=$2} /^sanids_packets_total /{p=$2} \
  >      /^sanids_ingest_errors_total\{/{e+=$2} /^sanids_shed_total\{/{s+=$2} \
  >      END{print (r==p+e+s) ? "reconciled" : "MISMATCH"}' advs.prom
  reconciled
  $ awk '/^sanids_degraded_total\{/{d+=$2} /^sanids_packets_total /{p=$2} \
  >      /^sanids_worker_restarts_total /{w=$2} \
  >      END{print (d==p) ? "degraded-all" : "MISMATCH", "restarts=" w+0}' advs.prom
  degraded-all restarts=0

Budgets sized for real traffic change nothing on the worm capture —
the breaker stays closed and the semantic verdicts are untouched:

  $ sanids scan trace.pcap --unused 10.2.200.0/21 \
  >   --budget bytes=262144,insns=200000,steps=400000,deadline=0 \
  >   --breaker default --degrade | grep -c 'ALERT code-red-ii'
  3

Hardening misconfiguration is a usage error, not a silent no-op:

  $ sanids scan adv.pcap --degrade
  sanids scan: invalid configuration: degrade requires an analysis budget or a breaker (nothing can trigger degradation otherwise)
  [64]
  $ sanids scan adv.pcap --breaker fails=0 2> /dev/null
  [64]
  $ sanids scan adv.pcap --budget bytes=0 2> /dev/null
  [64]
