(* Tests for the IR and the semantic template matcher: the three Figure 1
   routines, register renaming, junk insertion, out-of-order code, constant
   routing, and the shell-spawn / alt-decoder / Code Red templates. *)

open Sanids_x86
open Sanids_ir
open Sanids_semantic

let i x = Asm.I x
let reg r = Insn.Reg r
let imm v = Insn.Imm v
let mem_of r = Insn.Mem (Insn.mem_base r)

let mov32 d s = Insn.Mov (Insn.S32bit, d, s)
let arith op d s = Insn.Arith (op, Insn.S32bit, d, s)
let arith8 op d s = Insn.Arith (op, Insn.S8bit, d, s)

(* ------------------------------------------------------------------ *)
(* The three equivalent decryption routines of Figure 1. *)

let figure_1a =
  Asm.assemble
    [
      Asm.Label "decode";
      i (arith8 Insn.Xor (mem_of Reg.EAX) (imm 0x95l));
      i (Insn.Inc (Insn.S32bit, reg Reg.EAX));
      Asm.Loop_to "decode";
    ]

let figure_1b =
  Asm.assemble
    [
      Asm.Label "decode";
      i (mov32 (reg Reg.EBX) (imm 0x31l));
      i (arith Insn.Add (reg Reg.EBX) (imm 0x64l));
      i (arith8 Insn.Xor (mem_of Reg.EAX) (Insn.Reg8 Reg.BL));
      i (arith Insn.Add (reg Reg.EAX) (imm 1l));
      Asm.Loop_to "decode";
    ]

let figure_1c =
  Asm.assemble
    [
      Asm.Label "decode";
      i (mov32 (reg Reg.ECX) (imm 0l));
      i (Insn.Inc (Insn.S32bit, reg Reg.ECX));
      i (Insn.Inc (Insn.S32bit, reg Reg.ECX));
      Asm.Jmp "one";
      Asm.Label "two";
      i (arith Insn.Add (reg Reg.EAX) (imm 1l));
      Asm.Jmp "three";
      Asm.Label "one";
      i (mov32 (reg Reg.EBX) (imm 0x31l));
      i (arith Insn.Add (reg Reg.EBX) (imm 0x64l));
      i (arith8 Insn.Xor (mem_of Reg.EAX) (Insn.Reg8 Reg.BL));
      Asm.Jmp "two";
      Asm.Label "three";
      Asm.Loop_to "decode";
    ]

let decrypt_templates = Template_lib.xor_decrypt

let find_match templates code =
  match Matcher.scan ~templates code with [] -> None | r :: _ -> Some r

let check_matches name templates code =
  match find_match templates code with
  | Some _ -> ()
  | None -> Alcotest.failf "%s: expected a template match" name

let check_no_match name templates code =
  match find_match templates code with
  | None -> ()
  | Some r ->
      Alcotest.failf "%s: unexpected match %s" name
        (Format.asprintf "%a" Matcher.pp_result r)

let key_of result =
  match List.assoc_opt "key" result.Matcher.const_bindings with
  | Some k -> k
  | None -> Alcotest.fail "no key binding"

let test_figure_1a () =
  match find_match decrypt_templates figure_1a with
  | Some r -> Alcotest.(check int32) "key folded" 0x95l (key_of r)
  | None -> Alcotest.fail "figure 1a must match decrypt-loop"

let test_figure_1b () =
  (* the key is 0x31 + 0x64 = 0x95, reachable only by constant folding *)
  match find_match decrypt_templates figure_1b with
  | Some r -> Alcotest.(check int32) "key folded through add" 0x95l (key_of r)
  | None -> Alcotest.fail "figure 1b must match decrypt-loop"

let test_figure_1c () =
  match find_match decrypt_templates figure_1c with
  | Some r -> Alcotest.(check int32) "key folded out of order" 0x95l (key_of r)
  | None -> Alcotest.fail "figure 1c must match decrypt-loop"

(* register renaming: same loop on edi/dl *)
let test_register_renaming () =
  let code =
    Asm.assemble
      [
        Asm.Label "decode";
        i (arith8 Insn.Xor (mem_of Reg.EDI) (imm 0x42l));
        i (Insn.Inc (Insn.S32bit, reg Reg.EDI));
        Asm.Loop_to "decode";
      ]
  in
  match find_match decrypt_templates code with
  | Some r ->
      let ptr = List.assoc "ptr" r.Matcher.reg_bindings in
      Alcotest.(check string) "ptr bound to edi" "edi" (Reg.name ptr)
  | None -> Alcotest.fail "renamed decoder must match"

(* junk insertion between the decoder's real instructions *)
let test_junk_insertion () =
  let junk =
    [
      i (mov32 (reg Reg.EDX) (imm 0x1234l));
      i (arith Insn.Add (reg Reg.EDX) (reg Reg.EDX));
      i Insn.Nop;
      i (Insn.Push_reg Reg.EDX);
      i (Insn.Pop_reg Reg.EDX);
    ]
  in
  let code =
    Asm.assemble
      ([ Asm.Label "decode" ] @ junk
      @ [ i (arith8 Insn.Xor (mem_of Reg.EAX) (imm 0x77l)) ]
      @ junk
      @ [ i (Insn.Inc (Insn.S32bit, reg Reg.EAX)) ]
      @ junk
      @ [ Asm.Loop_to "decode" ])
  in
  check_matches "junk-laden decoder" decrypt_templates code

(* the key routed through a push/pop stack round-trip *)
let test_stack_routed_key () =
  let code =
    Asm.assemble
      [
        Asm.Label "decode";
        i (Insn.Push_imm 0x33l);
        i (Insn.Pop_reg Reg.EBX);
        i (arith Insn.Add (reg Reg.EBX) (imm 0x11l));
        i (arith8 Insn.Xor (mem_of Reg.EAX) (Insn.Reg8 Reg.BL));
        i (Insn.Inc (Insn.S32bit, reg Reg.EAX));
        Asm.Loop_to "decode";
      ]
  in
  match find_match decrypt_templates code with
  | Some r -> Alcotest.(check int32) "key via stack" 0x44l (key_of r)
  | None -> Alcotest.fail "stack-routed key must match"

(* xor with key 0 is a no-op loop, not a decoder: guard must reject *)
let test_zero_key_rejected () =
  let code =
    Asm.assemble
      [
        Asm.Label "decode";
        i (arith8 Insn.Xor (mem_of Reg.EAX) (imm 0l));
        i (Insn.Inc (Insn.S32bit, reg Reg.EAX));
        Asm.Loop_to "decode";
      ]
  in
  check_no_match "zero key" decrypt_templates code

(* a loop whose body dereferences wild pointers cannot be a decoder:
   real engines' junk never touches memory through uninitialized
   registers (it would fault at run time) *)
let test_wild_deref_loop_rejected () =
  let code =
    Asm.assemble
      [
        Asm.Label "decode";
        (* junk that reads through an unrelated, unbound pointer *)
        i (Insn.Mov (Insn.S8bit, Insn.Reg8 Reg.DL, mem_of Reg.EDX));
        i (arith8 Insn.Xor (mem_of Reg.EAX) (imm 0x95l));
        i (Insn.Inc (Insn.S32bit, reg Reg.EAX));
        Asm.Loop_to "decode";
      ]
  in
  check_no_match "wild deref in loop body" decrypt_templates code

(* a large fixed displacement off the walked pointer is an accident, not
   a decoder cell *)
let test_large_disp_rejected () =
  let code =
    Asm.assemble
      [
        Asm.Label "decode";
        i (Insn.Arith (Insn.Xor, Insn.S8bit, Insn.Mem (Insn.mem_base_disp Reg.EAX 0x44l), imm 0x95l));
        i (Insn.Inc (Insn.S32bit, reg Reg.EAX));
        Asm.Loop_to "decode";
      ]
  in
  check_no_match "large displacement" decrypt_templates code;
  (* while a small one is a legitimate spelling *)
  let near =
    Asm.assemble
      [
        Asm.Label "decode";
        i (Insn.Arith (Insn.Xor, Insn.S8bit, Insn.Mem (Insn.mem_base_disp Reg.EAX 4l), imm 0x95l));
        i (Insn.Inc (Insn.S32bit, reg Reg.EAX));
        Asm.Loop_to "decode";
      ]
  in
  check_matches "small displacement" decrypt_templates near

(* a string instruction's implicit pointer bump is not a standalone
   advance *)
let test_implicit_advance_rejected () =
  let code =
    Asm.assemble
      [
        Asm.Label "decode";
        i (arith8 Insn.Xor (mem_of Reg.EDI) (imm 0x95l));
        (* scasb bumps EDI as a side effect — must not satisfy the
           advance step on its own *)
        i Insn.Scasb;
        Asm.Loop_to "decode";
      ]
  in
  check_no_match "scasb as advance" decrypt_templates code

(* a forward loop-free xor is not a decryption loop *)
let test_no_back_edge_rejected () =
  let code =
    Encode.program
      [
        arith8 Insn.Xor (mem_of Reg.EAX) (imm 0x95l);
        Insn.Inc (Insn.S32bit, reg Reg.EAX);
        Insn.Ret;
      ]
  in
  check_no_match "no back edge" decrypt_templates code

(* benign-looking code: a memcpy-ish forward loop *)
let test_benign_copy_loop () =
  let code =
    Asm.assemble
      [
        Asm.Label "copy";
        i (Insn.Mov (Insn.S8bit, Insn.Reg8 Reg.DL, mem_of Reg.ESI));
        i (Insn.Mov (Insn.S8bit, mem_of Reg.EDI, Insn.Reg8 Reg.DL));
        i (Insn.Inc (Insn.S32bit, reg Reg.ESI));
        i (Insn.Inc (Insn.S32bit, reg Reg.EDI));
        Asm.Loop_to "copy";
      ]
  in
  check_no_match "copy loop vs xor-decrypt" decrypt_templates code

(* ------------------------------------------------------------------ *)
(* Alternate (load/transform/store) decoder — Figure 7 family. *)

let alt_code =
  Asm.assemble
    [
      Asm.Label "top";
      i (Insn.Mov (Insn.S8bit, Insn.Reg8 Reg.BL, mem_of Reg.EAX));
      i (Insn.Not (Insn.S8bit, Insn.Reg8 Reg.BL));
      i (arith8 Insn.Xor (Insn.Reg8 Reg.BL) (imm 0x42l));
      i (Insn.Mov (Insn.S8bit, mem_of Reg.EAX, Insn.Reg8 Reg.BL));
      i (Insn.Inc (Insn.S32bit, reg Reg.EAX));
      Asm.Loop_to "top";
    ]

let test_alt_decoder () =
  check_matches "alt decoder" Template_lib.alt_decoder alt_code

let test_alt_decoder_not_matched_by_xor_template () =
  (* the paper's 68% experiment: the xor template alone misses this *)
  check_no_match "alt decoder vs xor template" decrypt_templates alt_code

let test_alt_decoder_with_movzx_load () =
  (* a decoder that loads its working byte with movzx (zero-extension)
     still exhibits the load/transform/store behaviour *)
  let code =
    Asm.assemble
      [
        Asm.Label "top";
        i (Insn.Movzx (Reg.EBX, mem_of Reg.ESI));
        i (arith8 Insn.Xor (Insn.Reg8 Reg.BL) (imm 0x5Al));
        i (Insn.Mov (Insn.S8bit, mem_of Reg.ESI, Insn.Reg8 Reg.BL));
        i (Insn.Inc (Insn.S32bit, reg Reg.ESI));
        Asm.Loop_to "top";
      ]
  in
  check_matches "movzx-based decoder" Template_lib.alt_decoder code

let test_copy_loop_not_alt_decoder () =
  (* load+store with no transform must not satisfy the alt decoder *)
  let code =
    Asm.assemble
      [
        Asm.Label "copy";
        i (Insn.Mov (Insn.S8bit, Insn.Reg8 Reg.DL, mem_of Reg.ESI));
        i (Insn.Mov (Insn.S8bit, mem_of Reg.ESI, Insn.Reg8 Reg.DL));
        i (Insn.Inc (Insn.S32bit, reg Reg.ESI));
        Asm.Loop_to "copy";
      ]
  in
  check_no_match "pure copy loop" Template_lib.alt_decoder code

(* ------------------------------------------------------------------ *)
(* Shell spawning — Figure 6. *)

let execve_shellcode =
  Encode.program
    [
      arith Insn.Xor (reg Reg.EAX) (reg Reg.EAX);
      Insn.Push_reg Reg.EAX;
      Insn.Push_imm 0x68732f2fl;
      Insn.Push_imm 0x6e69622fl;
      mov32 (reg Reg.EBX) (reg Reg.ESP);
      Insn.Push_reg Reg.EAX;
      Insn.Push_reg Reg.EBX;
      mov32 (reg Reg.ECX) (reg Reg.ESP);
      Insn.Cdq;
      Insn.Mov (Insn.S8bit, Insn.Reg8 Reg.AL, imm 11l);
      Insn.Int 0x80;
    ]

let test_shell_spawn () =
  check_matches "execve shellcode" Template_lib.shell_spawn execve_shellcode

let test_shell_spawn_requires_eleven () =
  (* same structure but EAX = 4 (write syscall): must not match *)
  let code =
    Encode.program
      [
        arith Insn.Xor (reg Reg.EAX) (reg Reg.EAX);
        Insn.Mov (Insn.S8bit, Insn.Reg8 Reg.AL, imm 4l);
        Insn.Int 0x80;
      ]
  in
  check_no_match "write syscall" Template_lib.shell_spawn code

let test_shell_spawn_folded_eax () =
  (* EAX reaches 11 through arithmetic: 3 + 8 *)
  let code =
    Encode.program
      [
        mov32 (reg Reg.EAX) (imm 3l);
        arith Insn.Add (reg Reg.EAX) (imm 8l);
        Insn.Int 0x80;
      ]
  in
  check_matches "folded eax" Template_lib.shell_spawn code

let test_shell_spawn_memory_routed_string () =
  (* the "/bin//sh" words are pushed encrypted and fixed up in place —
     the Stack_const step must read the folded slot *)
  let code =
    Encode.program
      [
        arith Insn.Xor (reg Reg.EAX) (reg Reg.EAX);
        Insn.Push_reg Reg.EAX;
        Insn.Push_imm (Int32.logxor 0x68732f2fl 0x5A5A5A5Al);
        arith Insn.Xor (mem_of Reg.ESP) (imm 0x5A5A5A5Al);
        Insn.Push_imm (Int32.sub 0x6e69622fl 0x01010101l);
        arith Insn.Add (mem_of Reg.ESP) (imm 0x01010101l);
        mov32 (reg Reg.EBX) (reg Reg.ESP);
        Insn.Push_reg Reg.EAX;
        Insn.Push_reg Reg.EBX;
        mov32 (reg Reg.ECX) (reg Reg.ESP);
        Insn.Cdq;
        Insn.Mov (Insn.S8bit, Insn.Reg8 Reg.AL, imm 11l);
        Insn.Int 0x80;
      ]
  in
  (* matched by the string-building variants, not only the bare-syscall
     fallback: check a Stack_const-bearing variant in isolation *)
  let string_variant = List.hd Template_lib.shell_spawn in
  Alcotest.(check bool) "stack-const variant matches" true
    (Matcher.satisfies string_variant code)

let test_port_bind_shell () =
  let sys ?bl al =
    (match bl with
    | Some b ->
        [
          arith Insn.Xor (reg Reg.EBX) (reg Reg.EBX);
          Insn.Mov (Insn.S8bit, Insn.Reg8 Reg.BL, imm b);
        ]
    | None -> [])
    @ [
        arith Insn.Xor (reg Reg.EAX) (reg Reg.EAX);
        Insn.Mov (Insn.S8bit, Insn.Reg8 Reg.AL, imm al);
        Insn.Int 0x80;
      ]
  in
  let code =
    Encode.program
      (sys ~bl:1l 102l @ sys ~bl:2l 102l @ sys ~bl:4l 102l @ sys 63l
      @ [
          arith Insn.Xor (reg Reg.EAX) (reg Reg.EAX);
          Insn.Push_reg Reg.EAX;
          Insn.Push_imm 0x68732f2fl;
          Insn.Push_imm 0x6e69622fl;
          mov32 (reg Reg.EBX) (reg Reg.ESP);
        ]
      @ [ Insn.Mov (Insn.S8bit, Insn.Reg8 Reg.AL, imm 11l); Insn.Int 0x80 ])
  in
  check_matches "port bind shell" Template_lib.port_bind_shell code;
  (* a plain execve shellcode is not a port binder *)
  check_no_match "plain execve is not port-bind" Template_lib.port_bind_shell
    execve_shellcode

(* ------------------------------------------------------------------ *)
(* Code Red II vector. *)

let test_code_red_ii () =
  let code =
    Encode.program
      [
        Insn.Nop;
        Insn.Push_imm 0x7801cbd3l;
        Insn.Nop;
        Insn.Push_imm 0x7801cbd3l;
        Insn.Nop;
        Insn.Push_imm 0x7801cbd3l;
      ]
  in
  check_matches "code red ii" Template_lib.code_red_ii code;
  let once = Encode.program [ Insn.Push_imm 0x7801cbd3l; Insn.Ret ] in
  check_no_match "single occurrence" Template_lib.code_red_ii once

(* ------------------------------------------------------------------ *)
(* IR unit tests *)

let test_lift_normalization () =
  let open Sem in
  let advance_of i =
    match lift i with
    | [ S_advance { reg; amount; _ } ] -> (reg, amount)
    | _ -> Alcotest.fail "expected S_advance"
  in
  Alcotest.(check bool) "inc" true (advance_of (Insn.Inc (Insn.S32bit, reg Reg.EAX)) = (Reg.EAX, 1l));
  Alcotest.(check bool) "add imm" true
    (advance_of (arith Insn.Add (reg Reg.EAX) (imm 1l)) = (Reg.EAX, 1l));
  Alcotest.(check bool) "sub -1" true
    (advance_of (arith Insn.Sub (reg Reg.EAX) (imm (-1l))) = (Reg.EAX, 1l));
  Alcotest.(check bool) "lea eax,[eax+1]" true
    (advance_of (Insn.Lea (Reg.EAX, Insn.mem_base_disp Reg.EAX 1l)) = (Reg.EAX, 1l))

let test_lift_zeroing_idiom () =
  match Sem.lift (arith Insn.Xor (reg Reg.EDX) (reg Reg.EDX)) with
  | [ Sem.S_set { dst = Reg.EDX; src = Sem.Vconst 0l; _ } ] -> ()
  | _ -> Alcotest.fail "xor edx,edx must lift to edx := 0"

let test_lift_lods () =
  match Sem.lift Insn.Lodsb with
  | [ Sem.S_load { dst = Reg.EAX; ptr = Reg.ESI; _ }; Sem.S_advance { reg = Reg.ESI; amount = 1l; implicit = true } ]
    -> ()
  | _ -> Alcotest.fail "lodsb must lift to load + advance"

let test_constprop_byte_merge () =
  let s = Constprop.initial in
  let s = Constprop.step_insn s (arith Insn.Xor (reg Reg.EAX) (reg Reg.EAX)) in
  let s = Constprop.step_insn s (Insn.Mov (Insn.S8bit, Insn.Reg8 Reg.AL, imm 11l)) in
  Alcotest.(check (option int32)) "eax fully known" (Some 11l) (Constprop.reg32 s Reg.EAX)

let test_constprop_partial_low8 () =
  let s = Constprop.initial in
  (* only the low byte is known *)
  let s = Constprop.step_insn s (Insn.Mov (Insn.S8bit, Insn.Reg8 Reg.AL, imm 11l)) in
  Alcotest.(check (option int32)) "eax not fully known" None (Constprop.reg32 s Reg.EAX);
  Alcotest.(check (option int)) "al known" (Some 11) (Constprop.reg_low8 s Reg.EAX)

let test_constprop_stack_slots () =
  let s = Constprop.initial in
  let s = Constprop.step_insn s (Insn.Push_imm 0x100l) in
  (* fix the value up in place, then read it back two ways *)
  let s =
    Constprop.step_insn s
      (Insn.Arith (Insn.Xor, Insn.S32bit, Insn.Mem (Insn.mem_base Reg.ESP), imm 0x0FFl))
  in
  let s =
    Constprop.step_insn s
      (Insn.Mov (Insn.S32bit, Insn.Reg Reg.EBX, Insn.Mem (Insn.mem_base Reg.ESP)))
  in
  Alcotest.(check (option int32)) "slot read" (Some 0x1FFl) (Constprop.reg32 s Reg.EBX);
  let s = Constprop.step_insn s (Insn.Pop_reg Reg.ECX) in
  Alcotest.(check (option int32)) "pop agrees" (Some 0x1FFl) (Constprop.reg32 s Reg.ECX)

let test_constprop_deep_slot () =
  let s = Constprop.initial in
  let s = Constprop.step_insn s (Insn.Push_imm 0xAAl) in
  let s = Constprop.step_insn s (Insn.Push_imm 0xBBl) in
  let s =
    Constprop.step_insn s
      (Insn.Mov (Insn.S32bit, Insn.Reg Reg.ESI, Insn.Mem (Insn.mem_base_disp Reg.ESP 4l)))
  in
  Alcotest.(check (option int32)) "[esp+4] is the older push" (Some 0xAAl)
    (Constprop.reg32 s Reg.ESI);
  (* a store through an unknown base must not corrupt slot knowledge
     soundness: it is simply ignored by the slot model (the concrete
     emulator cross-check in test_emulator covers aliasing soundness for
     the code our generators emit) *)
  let s =
    Constprop.step_insn s
      (Insn.Mov (Insn.S32bit, Insn.Mem (Insn.mem_base_disp Reg.ESP 12l), imm 1l))
  in
  Alcotest.(check (option int32)) "out-of-range slot untouched" (Some 0xAAl)
    (Constprop.reg32 s Reg.ESI)

let test_constprop_stack_roundtrip () =
  let s = Constprop.initial in
  let s = Constprop.step_insn s (Insn.Push_imm 0xBEEFl) in
  let s = Constprop.step_insn s (Insn.Pop_reg Reg.ESI) in
  Alcotest.(check (option int32)) "const through stack" (Some 0xBEEFl)
    (Constprop.reg32 s Reg.ESI)

let test_constprop_xchg () =
  let s = Constprop.initial in
  let s = Constprop.step_insn s (mov32 (reg Reg.EAX) (imm 5l)) in
  let s = Constprop.step_insn s (Insn.Xchg (Reg.EAX, Reg.EBX)) in
  Alcotest.(check (option int32)) "ebx got 5" (Some 5l) (Constprop.reg32 s Reg.EBX);
  Alcotest.(check (option int32)) "eax unknown" None (Constprop.reg32 s Reg.EAX)

let test_constprop_not_rol () =
  let s = Constprop.initial in
  let s = Constprop.step_insn s (mov32 (reg Reg.EBX) (imm 0x000000FFl)) in
  let s = Constprop.step_insn s (Insn.Not (Insn.S32bit, reg Reg.EBX)) in
  Alcotest.(check (option int32)) "not" (Some 0xFFFFFF00l) (Constprop.reg32 s Reg.EBX);
  let s = Constprop.step_insn s (Insn.Shift (Insn.Rol, Insn.S32bit, reg Reg.EBX, 8)) in
  Alcotest.(check (option int32)) "rol 8" (Some 0xFFFF00FFl) (Constprop.reg32 s Reg.EBX)

let test_constprop_load_clobbers () =
  let s = Constprop.initial in
  let s = Constprop.step_insn s (mov32 (reg Reg.EAX) (imm 5l)) in
  let s = Constprop.step_insn s (mov32 (reg Reg.EAX) (mem_of Reg.EBX)) in
  Alcotest.(check (option int32)) "load clobbers" None (Constprop.reg32 s Reg.EAX)

let test_trace_follows_jmp () =
  let code =
    Asm.assemble
      [
        i Insn.Nop;
        Asm.Jmp "skip";
        i Insn.Int3;
        (* unreachable *)
        Asm.Label "skip";
        i Insn.Ret;
      ]
  in
  let t = Trace.build code ~entry:0 in
  let insns = Array.to_list (Array.map (fun (s : Trace.step) -> s.Trace.insn) t) in
  Alcotest.(check bool) "int3 skipped" true
    (not (List.exists (fun x -> x = Insn.Int3) insns));
  Alcotest.(check bool) "ends with ret" true
    (match List.rev insns with Insn.Ret :: _ -> true | _ -> false)

let test_trace_stops_on_revisit () =
  let code = Asm.assemble [ Asm.Label "top"; i Insn.Nop; Asm.Jmp "top" ] in
  let t = Trace.build code ~entry:0 in
  Alcotest.(check int) "nop + jmp only" 2 (Array.length t)

let test_trace_bounds () =
  let t = Trace.build "\x90\x90" ~entry:99 in
  Alcotest.(check int) "out of range entry" 0 (Array.length t)

let test_entry_points () =
  let code = Encode.program [ Insn.Nop; Insn.Ret; Insn.Nop; Insn.Nop ] in
  let eps = Trace.entry_points code in
  Alcotest.(check bool) "has 0" true (List.mem 0 eps);
  Alcotest.(check bool) "has post-ret restart" true (List.mem 2 eps)

(* ------------------------------------------------------------------ *)
(* Properties: random junk and benign strings never match the library;
   decoders survive random junk prefix/suffix. *)

let prop_random_bytes_rarely_match =
  QCheck2.Test.make ~name:"random bytes never satisfy decrypt-loop" ~count:60
    QCheck2.Gen.(string_size (int_range 20 200))
    (fun s -> not (List.exists (fun t -> Matcher.satisfies t s) decrypt_templates))

let prop_ascii_never_matches =
  QCheck2.Test.make ~name:"printable ascii never satisfies any template" ~count:60
    QCheck2.Gen.(string_size ~gen:(map Char.chr (int_range 0x20 0x7e)) (int_range 20 300))
    (fun s ->
      not (List.exists (fun t -> Matcher.satisfies t s) Template_lib.default_set))

let prop_decoder_survives_padding =
  QCheck2.Test.make ~name:"decoder still matches with random padding" ~count:40
    QCheck2.Gen.(pair (string_size (int_bound 40)) (string_size (int_bound 40)))
    (fun (pre, post) ->
      let code = pre ^ figure_1a ^ post in
      List.exists (fun t -> Matcher.satisfies t code) decrypt_templates)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [ prop_random_bytes_rarely_match; prop_ascii_never_matches; prop_decoder_survives_padding ]

let () =
  Alcotest.run "semantic"
    [
      ( "figure1",
        [
          Alcotest.test_case "1a plain loop" `Quick test_figure_1a;
          Alcotest.test_case "1b folded key" `Quick test_figure_1b;
          Alcotest.test_case "1c out of order" `Quick test_figure_1c;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "register renaming" `Quick test_register_renaming;
          Alcotest.test_case "junk insertion" `Quick test_junk_insertion;
          Alcotest.test_case "stack-routed key" `Quick test_stack_routed_key;
          Alcotest.test_case "zero key rejected" `Quick test_zero_key_rejected;
          Alcotest.test_case "no back edge rejected" `Quick test_no_back_edge_rejected;
          Alcotest.test_case "wild deref rejected" `Quick test_wild_deref_loop_rejected;
          Alcotest.test_case "large disp rejected" `Quick test_large_disp_rejected;
          Alcotest.test_case "implicit advance rejected" `Quick test_implicit_advance_rejected;
          Alcotest.test_case "benign copy loop" `Quick test_benign_copy_loop;
        ] );
      ( "alt-decoder",
        [
          Alcotest.test_case "matches" `Quick test_alt_decoder;
          Alcotest.test_case "not matched by xor template" `Quick
            test_alt_decoder_not_matched_by_xor_template;
          Alcotest.test_case "movzx load" `Quick test_alt_decoder_with_movzx_load;
          Alcotest.test_case "copy loop rejected" `Quick test_copy_loop_not_alt_decoder;
        ] );
      ( "shell-spawn",
        [
          Alcotest.test_case "classic execve" `Quick test_shell_spawn;
          Alcotest.test_case "wrong syscall rejected" `Quick test_shell_spawn_requires_eleven;
          Alcotest.test_case "folded eax" `Quick test_shell_spawn_folded_eax;
          Alcotest.test_case "memory-routed string" `Quick test_shell_spawn_memory_routed_string;
          Alcotest.test_case "port bind" `Quick test_port_bind_shell;
        ] );
      ("code-red", [ Alcotest.test_case "vector" `Quick test_code_red_ii ]);
      ( "ir",
        [
          Alcotest.test_case "advance normalization" `Quick test_lift_normalization;
          Alcotest.test_case "zeroing idiom" `Quick test_lift_zeroing_idiom;
          Alcotest.test_case "lods decomposition" `Quick test_lift_lods;
          Alcotest.test_case "byte merge" `Quick test_constprop_byte_merge;
          Alcotest.test_case "partial low8" `Quick test_constprop_partial_low8;
          Alcotest.test_case "stack roundtrip" `Quick test_constprop_stack_roundtrip;
          Alcotest.test_case "stack slots" `Quick test_constprop_stack_slots;
          Alcotest.test_case "deep slot" `Quick test_constprop_deep_slot;
          Alcotest.test_case "xchg" `Quick test_constprop_xchg;
          Alcotest.test_case "not/rol" `Quick test_constprop_not_rol;
          Alcotest.test_case "load clobbers" `Quick test_constprop_load_clobbers;
        ] );
      ( "trace",
        [
          Alcotest.test_case "follows jmp" `Quick test_trace_follows_jmp;
          Alcotest.test_case "stops on revisit" `Quick test_trace_stops_on_revisit;
          Alcotest.test_case "bounds" `Quick test_trace_bounds;
          Alcotest.test_case "entry points" `Quick test_entry_points;
        ] );
      ("properties", properties);
    ]
