The serve daemon end to end: lint-gated hot reload over a control
socket, live Prometheus metrics, and a graceful drain whose
reconciliation line accounts for every record.

Seed a spool directory and a clean live configuration:

  $ sanids gen-trace seed.pcap --kind codered --packets 300 --instances 2 --seed 7
  ground truth: 314 packets, 2 CRII instances, 12 scans (unused space: 10.2.200.0/21)
  wrote seed.pcap (314 packets)
  $ mkdir spool
  $ cp seed.pcap spool/a.pcap
  $ printf 'scan_threshold=4\nunused=10.2.200.0/21\n' > live.conf

A dirty configuration cannot even start the daemon — the startup path
runs the same lint gate as hot reload:

  $ printf 'scan_threshold=0\n' > dead.conf
  $ sanids serve spool --config-file dead.conf
  sanids serve: configuration rejected: SL201 error config: scan_threshold must be positive (got 0)
  [65]

Start the daemon on a Unix control socket and probe it:

  $ sanids serve spool --socket ctl.sock --config-file live.conf --domains 2 > serve.log 2>&1 &
  $ sanids ctl health --socket ctl.sock
  ok state=running(gen=1) generation=1

Wait until the first spool file is fully dispatched, then scrape the
generation gauge and reload counters:

  $ i=0; until [ "$(sanids ctl metrics --socket ctl.sock | awk '/^sanids_ingest_records_total /{print $2}')" = "314" ] || [ $i -ge 200 ]; do i=$((i+1)); sleep 0.1; done
  $ sanids ctl metrics --socket ctl.sock | grep -E '^sanids_(config_generation|reload_total)'
  sanids_config_generation 1
  sanids_reload_total{outcome="applied"} 0
  sanids_reload_total{outcome="rejected"} 0

A dirty reload is rejected atomically: typed exit 65, the rejected
counter ticks, and generation 1 keeps serving untouched:

  $ cp live.conf live.conf.good
  $ printf 'scan_threshold=0\n' > live.conf
  $ sanids ctl reload --socket ctl.sock
  rejected: SL201 error config: scan_threshold must be positive (got 0)
  [65]
  $ sanids ctl health --socket ctl.sock
  ok state=running(gen=1) generation=1
  $ sanids ctl metrics --socket ctl.sock | grep -E '^sanids_(config_generation|reload_total)'
  sanids_config_generation 1
  sanids_reload_total{outcome="applied"} 0
  sanids_reload_total{outcome="rejected"} 1

A clean reload swaps generations without losing a packet:

  $ cp live.conf.good live.conf
  $ sanids ctl reload --socket ctl.sock
  applied generation=2
  $ sanids ctl health --socket ctl.sock
  ok state=running(gen=2) generation=2
  $ sanids ctl metrics --socket ctl.sock | grep -E '^sanids_(config_generation|reload_total)'
  sanids_config_generation 2
  sanids_reload_total{outcome="applied"} 1
  sanids_reload_total{outcome="rejected"} 1

The new generation picks up newly spooled captures:

  $ cp seed.pcap spool/b.pcap
  $ i=0; until [ "$(sanids ctl metrics --socket ctl.sock | awk '/^sanids_ingest_records_total /{print $2}')" = "628" ] || [ $i -ge 200 ]; do i=$((i+1)); sleep 0.1; done

Drain gracefully and wait for the daemon to exit:

  $ sanids ctl drain --socket ctl.sock
  drained generation=2
  $ wait

The lifecycle transcript: both generations served, the dirty reload
rejected in place, and the reconciliation identity holds exactly
(records = verdicts + errors + shed + failed):

  $ grep '^serve:' serve.log
  serve: source dir:spool
  serve: generation 1 serving
  serve: control socket ctl.sock
  serve: reload rejected: SL201 error config: scan_threshold must be positive (got 0)
  serve: generation 2 serving
  serve: draining
  serve: reconciliation records=628 verdicts=628 errors=0 shed=0 failed=0 reconciled
  serve: stopped generation=2
  $ grep -c 'ALERT code-red-ii' serve.log
  4
  $ awk '/^serve: reconciliation/{split($3,r,"=");split($4,v,"=");split($5,e,"=");split($6,s,"=");split($7,f,"=");bad=(r[2]!=v[2]+e[2]+s[2]+f[2])} END{exit bad}' serve.log

SIGTERM over a FIFO source is the same graceful drain:

  $ mkfifo stream.pcap
  $ sanids serve stream.pcap --socket ctl2.sock > serve2.log 2>&1 &
  $ pid=$!
  $ cat seed.pcap > stream.pcap
  $ sanids ctl health --socket ctl2.sock
  ok state=running(gen=1) generation=1
  $ i=0; until [ "$(sanids ctl metrics --socket ctl2.sock | awk '/^sanids_ingest_records_total /{print $2}')" = "314" ] || [ $i -ge 200 ]; do i=$((i+1)); sleep 0.1; done
  $ kill -TERM $pid
  $ wait $pid
  $ grep '^serve:' serve2.log
  serve: source fifo:stream.pcap
  serve: generation 1 serving
  serve: control socket ctl2.sock
  serve: draining
  serve: reconciliation records=314 verdicts=314 errors=0 shed=0 failed=0 reconciled
  serve: stopped generation=1
