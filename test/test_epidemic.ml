(* Tests for the worm propagation and containment models. *)

open Sanids_epidemic

let params =
  {
    Model.population = 100_000;
    address_space = 4294967296.0;
    scan_rate = 200.0;
    initial = 10;
  }

let test_logistic_boundary () =
  Alcotest.(check (float 0.5)) "i(0) = initial" 10.0 (Model.logistic params 0.0);
  let late = Model.logistic params 1.0e7 in
  Alcotest.(check bool) "saturates at population" true
    (late > 0.999 *. float_of_int params.Model.population)

let test_logistic_monotone () =
  let prev = ref 0.0 in
  for k = 0 to 100 do
    let v = Model.logistic params (float_of_int k *. 50.0) in
    if v < !prev -. 1e-9 then Alcotest.fail "logistic must be monotone";
    prev := v
  done

let test_time_to_fraction_inverts () =
  List.iter
    (fun f ->
      let t = Model.time_to_fraction params f in
      let i = Model.logistic params t in
      let expected = f *. float_of_int params.Model.population in
      Alcotest.(check bool)
        (Printf.sprintf "inverse at %.2f" f)
        true
        (Float.abs (i -. expected) /. expected < 1e-6))
    [ 0.01; 0.1; 0.5; 0.9; 0.99 ]

let test_faster_scanning_spreads_faster () =
  let slow = Model.time_to_fraction params 0.5 in
  let fast = Model.time_to_fraction { params with Model.scan_rate = 400.0 } 0.5 in
  Alcotest.(check bool) "doubling scan rate halves the half-time" true
    (Float.abs ((slow /. fast) -. 2.0) < 0.01)

let test_simulation_tracks_logistic () =
  let rng = Rng.create 0xE91D_0001L in
  let horizon = Model.time_to_fraction params 0.5 in
  let s = Model.simulate rng params ~duration:horizon ~on_tick:(fun _ -> ()) in
  let expected = Model.logistic params horizon in
  let ratio = float_of_int s.Model.infected /. expected in
  Alcotest.(check bool)
    (Printf.sprintf "stochastic within 2x of deterministic (ratio %.2f)" ratio)
    true
    (ratio > 0.5 && ratio < 2.0)

let test_simulation_stops_at_saturation () =
  let rng = Rng.create 0xE91D_0002L in
  let fast = { params with Model.scan_rate = 20_000.0; initial = 100 } in
  let s = Model.simulate rng fast ~duration:1.0e6 ~on_tick:(fun _ -> ()) in
  Alcotest.(check int) "everyone infected" fast.Model.population s.Model.infected

let test_invalid_params () =
  let bad f = match f () with exception Invalid_argument _ -> () | _ -> Alcotest.fail "expected Invalid_argument" in
  bad (fun () -> Model.logistic { params with Model.population = 0 } 1.0);
  bad (fun () -> Model.logistic { params with Model.initial = 0 } 1.0);
  bad (fun () -> Model.time_to_fraction params 1.5)

(* ------------------------------------------------------------------ *)

let containment_params reaction_time =
  {
    Containment.epidemic = params;
    monitored_fraction = 0.1;
    threshold = 5;
    reaction_time;
  }

let test_instant_reaction_contains () =
  let rng = Rng.create 0xE91D_0003L in
  let o = Containment.simulate rng (containment_params 1.0) ~duration:3600.0 in
  Alcotest.(check bool) "under 1% infected" true
    (Containment.infected_fraction o params < 0.01);
  Alcotest.(check bool) "hosts were quarantined" true (o.Containment.quarantined > 0)

let test_slow_reaction_fails () =
  let rng = Rng.create 0xE91D_0003L in
  let o = Containment.simulate rng (containment_params 1800.0) ~duration:3600.0 in
  Alcotest.(check bool) "majority infected" true
    (Containment.infected_fraction o params > 0.5)

let test_reaction_time_monotone () =
  let rng = Rng.create 0xE91D_0004L in
  let sweep =
    Containment.sweep_reaction_times rng (containment_params 0.0) ~duration:3600.0
      [ 1.0; 60.0; 600.0; 1800.0 ]
  in
  let fractions = List.map (fun (_, o) -> Containment.infected_fraction o params) sweep in
  let rec non_decreasing = function
    | a :: (b :: _ as tl) -> a <= b +. 0.02 && non_decreasing tl
    | _ -> true
  in
  Alcotest.(check bool) "worse with slower reaction" true (non_decreasing fractions)

let test_no_monitoring_no_notice () =
  let rng = Rng.create 0xE91D_0005L in
  let p = { (containment_params 1.0) with Containment.monitored_fraction = 0.0 } in
  let o = Containment.simulate rng p ~duration:600.0 in
  Alcotest.(check bool) "never noticed" true (o.Containment.first_notice = None);
  Alcotest.(check int) "nothing quarantined" 0 o.Containment.quarantined

let test_notice_time_scales_with_threshold () =
  let rng = Rng.create 0xE91D_0006L in
  let notice threshold =
    let p = { (containment_params 1.0e9) with Containment.threshold = threshold } in
    match (Containment.simulate (Rng.copy rng) p ~duration:600.0).Containment.first_notice with
    | Some t -> t
    | None -> Alcotest.fail "expected a notice"
  in
  Alcotest.(check bool) "higher threshold notices later" true (notice 200 > notice 5)

let () =
  Alcotest.run "epidemic"
    [
      ( "model",
        [
          Alcotest.test_case "logistic boundary" `Quick test_logistic_boundary;
          Alcotest.test_case "monotone" `Quick test_logistic_monotone;
          Alcotest.test_case "time_to_fraction inverts" `Quick test_time_to_fraction_inverts;
          Alcotest.test_case "scan rate scaling" `Quick test_faster_scanning_spreads_faster;
          Alcotest.test_case "simulation tracks logistic" `Quick test_simulation_tracks_logistic;
          Alcotest.test_case "saturation" `Quick test_simulation_stops_at_saturation;
          Alcotest.test_case "invalid params" `Quick test_invalid_params;
        ] );
      ( "containment",
        [
          Alcotest.test_case "instant reaction contains" `Quick test_instant_reaction_contains;
          Alcotest.test_case "slow reaction fails" `Quick test_slow_reaction_fails;
          Alcotest.test_case "monotone in reaction time" `Quick test_reaction_time_monotone;
          Alcotest.test_case "no monitoring no notice" `Quick test_no_monitoring_no_notice;
          Alcotest.test_case "threshold delays notice" `Quick test_notice_time_scales_with_threshold;
        ] );
    ]
