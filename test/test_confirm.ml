(* The dynamic-confirmation stage: outcome classification on real
   polymorphic decoders versus decoys, syscall register checking, config
   plumbing and lint, pipeline demotion/promotion with cache admission,
   and the emu-test vector harness. *)

open Sanids_net
open Sanids_nids
module Confirm = Sanids_confirm.Confirm
module Emu_test = Sanids_confirm.Emu_test
module Json = Sanids_confirm.Json
module Emulator = Sanids_x86.Emulator
module Admmutate = Sanids_polymorph.Admmutate
module Clet = Sanids_polymorph.Clet
module Shellcodes = Sanids_exploits.Shellcodes
module Adversarial = Sanids_workload.Adversarial
module Benign_gen = Sanids_workload.Benign_gen

let shellcode = (Shellcodes.find "classic").Shellcodes.code

let outcome = Alcotest.testable Confirm.pp (fun a b -> a = b)

(* ------------------------------------------------------------------ *)
(* outcome classification on generated corpora *)

let check_decrypts name code =
  match Confirm.run ~code ~entry:0 () with
  | Confirm.Confirmed_decrypt { written; steps } ->
      Alcotest.(check bool)
        (name ^ ": enough distinct writes")
        true
        (written >= Confirm.default_config.Confirm.min_written);
      Alcotest.(check bool) (name ^ ": took steps") true (steps > 0)
  | o -> Alcotest.failf "%s: expected Confirmed_decrypt, got %a" name Confirm.pp o

let test_admmutate_confirms () =
  List.iter
    (fun seed ->
      let g = Admmutate.generate (Rng.create seed) ~payload:shellcode in
      check_decrypts (Printf.sprintf "admmutate seed %Ld" seed) g.Admmutate.code)
    [ 1L; 2L; 3L; 4L; 5L; 6L; 7L; 8L ]

let test_admmutate_staged_confirms () =
  List.iter
    (fun seed ->
      let g = Admmutate.generate_staged (Rng.create seed) ~payload:shellcode in
      check_decrypts (Printf.sprintf "staged seed %Ld" seed) g.Admmutate.code)
    [ 1L; 2L; 3L ]

let test_clet_confirms () =
  List.iter
    (fun seed ->
      let g = Clet.generate (Rng.create seed) ~payload:shellcode in
      check_decrypts (Printf.sprintf "clet seed %Ld" seed) g.Clet.code)
    [ 1L; 2L; 3L; 4L; 5L ]

let test_shellcodes_confirm () =
  List.iter
    (fun (e : Shellcodes.entry) ->
      let o = Confirm.run ~code:e.Shellcodes.code ~entry:0 () in
      Alcotest.(check bool)
        (e.Shellcodes.name ^ " confirms")
        true (Confirm.confirmed o))
    Shellcodes.all

let test_benign_never_confirms () =
  List.iter
    (fun seed ->
      let rng = Rng.create seed in
      let code = Benign_gen.payload rng in
      let o = Confirm.run ~code ~entry:0 () in
      Alcotest.(check bool)
        (Printf.sprintf "benign seed %Ld does not confirm" seed)
        false (Confirm.confirmed o))
    [ 1L; 2L; 3L; 4L; 5L; 6L; 7L; 8L; 9L; 10L ]

let test_decoy_refuted () =
  List.iter
    (fun seed ->
      let code =
        Adversarial.payload ~kind:Adversarial.Decoy_decoder ~size:2048
          (Rng.create seed)
      in
      match Confirm.run ~code ~entry:0 () with
      | Confirm.Refuted _ -> ()
      | o -> Alcotest.failf "decoy seed %Ld: expected Refuted, got %a" seed Confirm.pp o)
    [ 1L; 2L; 3L; 4L; 5L ]

(* ------------------------------------------------------------------ *)
(* syscall classification details *)

let test_execve_register_check () =
  (* mov eax, 11; int 0x80 *)
  let code = "\xb8\x0b\x00\x00\x00\xcd\x80" in
  match Confirm.run ~code ~entry:0 () with
  | Confirm.Confirmed_syscall { nr = 11; name = "execve"; _ } -> ()
  | o -> Alcotest.failf "expected execve confirmation, got %a" Confirm.pp o

let test_socketcall_register_check () =
  (* mov eax, 102; mov ebx, 1; int 0x80 — socket(2) via socketcall *)
  let code = "\xb8\x66\x00\x00\x00\xbb\x01\x00\x00\x00\xcd\x80" in
  (match Confirm.run ~code ~entry:0 () with
  | Confirm.Confirmed_syscall { nr = 102; _ } -> ()
  | o -> Alcotest.failf "expected socketcall confirmation, got %a" Confirm.pp o);
  (* same vector with an invalid subcall in ebx must not confirm *)
  let bad = "\xb8\x66\x00\x00\x00\x31\xdb\xcd\x80" in
  Alcotest.(check bool)
    "socketcall with ebx=0 does not confirm" false
    (Confirm.confirmed (Confirm.run ~code:bad ~entry:0 ()))

let test_non_linux_interrupt_refutes () =
  (* int 0x81 is not a Linux syscall gate *)
  match Confirm.run ~code:"\xcd\x81" ~entry:0 () with
  | Confirm.Refuted _ -> ()
  | o -> Alcotest.failf "expected Refuted, got %a" Confirm.pp o

let test_fault_refutes () =
  (* hlt is outside the modelled subset: the run halts and is refuted *)
  match Confirm.run ~code:"\xf4" ~entry:0 () with
  | Confirm.Refuted _ -> ()
  | o -> Alcotest.failf "expected Refuted, got %a" Confirm.pp o

let test_budget_inconclusive () =
  (* jmp self runs forever: the step budget must end it *)
  let config = { Confirm.default_config with Confirm.max_steps = 50 } in
  Alcotest.check outcome "budget exhausted"
    (Confirm.Inconclusive Confirm.Budget)
    (Confirm.run ~config ~code:"\xeb\xfe" ~entry:0 ())

let test_seed_failures_inconclusive () =
  (match Confirm.run ~code:"\x90" ~entry:7 () with
  | Confirm.Inconclusive (Confirm.Fault _) -> ()
  | o -> Alcotest.failf "entry past code: got %a" Confirm.pp o);
  (match Confirm.run ~code:"\x90" ~entry:(-1) () with
  | Confirm.Inconclusive (Confirm.Fault _) -> ()
  | o -> Alcotest.failf "negative entry: got %a" Confirm.pp o);
  let config = { Confirm.default_config with Confirm.arena_size = 8192 } in
  match Confirm.run ~config ~code:(String.make 8192 '\x90') ~entry:0 () with
  | Confirm.Inconclusive (Confirm.Fault _) -> ()
  | o -> Alcotest.failf "code larger than arena: got %a" Confirm.pp o

let test_determinism () =
  let g = Admmutate.generate (Rng.create 99L) ~payload:shellcode in
  let run () = Confirm.run ~code:g.Admmutate.code ~entry:0 () in
  Alcotest.check outcome "same image, same outcome" (run ()) (run ())

(* ------------------------------------------------------------------ *)
(* config spec plumbing and lint *)

let test_config_spec_roundtrip () =
  (match Confirm.config_of_string "default" with
  | Ok c -> Alcotest.(check bool) "default spec" true (c = Confirm.default_config)
  | Error e -> Alcotest.fail e);
  let c =
    { Confirm.max_steps = 100; max_syscalls = 2; min_written = 4;
      arena_size = 8192 }
  in
  (match Confirm.config_of_string (Confirm.config_to_string c) with
  | Ok c' -> Alcotest.(check bool) "roundtrip" true (c = c')
  | Error e -> Alcotest.fail e);
  List.iter
    (fun spec ->
      match Confirm.config_of_string spec with
      | Ok _ -> Alcotest.failf "spec %S should not parse" spec
      | Error _ -> ())
    [ ""; "steps=0"; "steps=abc"; "bogus=1"; "arena=64" ]

let test_config_lint_codes () =
  let codes cfg =
    List.map (fun (f : Sanids_staticlint.Finding.t) -> f.Sanids_staticlint.Finding.code)
      (Config.lint cfg)
  in
  let with_confirm c = Config.with_confirm (Some c) Config.default in
  Alcotest.(check bool) "valid confirm config lints clean" false
    (List.mem "SL207" (codes (with_confirm Confirm.default_config)));
  Alcotest.(check bool) "invalid step budget raises SL207" true
    (List.mem "SL207"
       (codes (with_confirm { Confirm.default_config with Confirm.max_steps = 0 })));
  Alcotest.(check bool) "huge step budget warns SL208" true
    (List.mem "SL208"
       (codes
          (with_confirm { Confirm.default_config with Confirm.max_steps = 2_000_000 })))

let test_config_of_spec () =
  (match Config.of_spec "confirm=default" with
  | Ok f ->
      let cfg = f Config.default in
      Alcotest.(check bool) "confirm enabled" true
        (cfg.Config.confirm = Some Confirm.default_config)
  | Error e -> Alcotest.fail e);
  match Config.of_spec "confirm=steps=0" with
  | Ok _ -> Alcotest.fail "invalid confirm spec should not parse"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* non-raising emulator memory accessors *)

let test_mem_opt_bounds () =
  let emu = Emulator.create ~arena_size:8192 ~code:"\x90" () in
  let base = Emulator.code_base in
  Alcotest.(check (option string)) "read inside" (Some "\x90")
    (Emulator.read_mem_opt emu base 1);
  Alcotest.(check bool) "write inside" true
    (Emulator.write_mem_opt emu (Int32.add base 16l) "\xab" = Some ());
  Alcotest.(check (option string)) "read back" (Some "\xab")
    (Emulator.read_mem_opt emu (Int32.add base 16l) 1);
  Alcotest.(check (option string)) "read below the arena" None
    (Emulator.read_mem_opt emu (Int32.sub base 1l) 1);
  Alcotest.(check (option string)) "read spanning the end" None
    (Emulator.read_mem_opt emu (Int32.add base 8190l) 4);
  Alcotest.(check bool) "write past the end" true
    (Emulator.write_mem_opt emu (Int32.add base 8191l) "xy" = None)

(* ------------------------------------------------------------------ *)
(* the emu-test harness itself *)

let write_temp_vectors content =
  let path = Filename.temp_file "vectors" ".json" in
  let oc = open_out path in
  output_string oc content;
  close_out oc;
  path

let passing_case =
  {|[ { "name": "inc-eax",
       "initial": { "regs": { "eax": 1 }, "mem": [[0, 0x40]] },
       "final":   { "regs": { "eax": 2 }, "eip": 1 } } ]|}

let failing_case =
  {|[ { "name": "wrong-sum",
       "initial": { "regs": { "eax": 1 }, "mem": [[0, 0x40]] },
       "final":   { "regs": { "eax": 3 } } } ]|}

let test_harness_pass_and_fail () =
  let good = write_temp_vectors passing_case in
  let bad = write_temp_vectors failing_case in
  (match Emu_test.run [ good ] with
  | Ok r ->
      Alcotest.(check int) "one case" 1 r.Emu_test.cases;
      Alcotest.(check int) "all passed" 1 (Emu_test.passed r)
  | Error e -> Alcotest.fail e);
  (match Emu_test.run [ good; bad ] with
  | Ok r ->
      Alcotest.(check int) "two files" 2 r.Emu_test.files;
      Alcotest.(check int) "one failure" 1 (List.length r.Emu_test.failures);
      let f = List.hd r.Emu_test.failures in
      Alcotest.(check string) "failing case named" "wrong-sum" f.Emu_test.f_case;
      Alcotest.(check bool) "divergence described" true (f.Emu_test.f_details <> [])
  | Error e -> Alcotest.fail e);
  (match Emu_test.run ~filter:"inc-*" [ good; bad ] with
  | Ok r ->
      Alcotest.(check int) "filter selects one" 1 r.Emu_test.cases;
      Alcotest.(check int) "filtered run passes" 1 (Emu_test.passed r)
  | Error e -> Alcotest.fail e);
  (match Emu_test.run ~jobs:4 [ good; bad ] with
  | Ok r -> Alcotest.(check int) "parallel run agrees" 1 (List.length r.Emu_test.failures)
  | Error e -> Alcotest.fail e);
  Sys.remove good;
  Sys.remove bad

let test_harness_errors () =
  (match Emu_test.run [ "/nonexistent/vectors" ] with
  | Ok _ -> Alcotest.fail "missing path must error"
  | Error _ -> ());
  let mangled = write_temp_vectors "{ not json" in
  (match Emu_test.run [ mangled ] with
  | Ok _ -> Alcotest.fail "mangled file must error"
  | Error _ -> ());
  Sys.remove mangled;
  let not_array = write_temp_vectors {|{"name": "x"}|} in
  (match Emu_test.run [ not_array ] with
  | Ok _ -> Alcotest.fail "non-array top level must error"
  | Error _ -> ());
  Sys.remove not_array

let test_json_reader () =
  (match Json.of_string {| { "a": [1, 0x10, true, null, "x\n"] } |} with
  | Ok (Json.Obj [ ("a", Json.List l) ]) ->
      Alcotest.(check int) "array arity" 5 (List.length l);
      Alcotest.(check (option int)) "hex int" (Some 16)
        (Json.to_int_opt (List.nth l 1))
  | Ok _ -> Alcotest.fail "unexpected shape"
  | Error e -> Alcotest.fail e);
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "%S should not parse" s
      | Error _ -> ())
    [ "{"; "[1,]"; "1.5"; "[1] trailing"; {|{"a" 1}|} ]

(* ------------------------------------------------------------------ *)
(* pipeline integration: demotion, promotion, cache admission *)

let ip = Ipaddr.of_string
let attacker = ip "172.16.5.5"
let victim = ip "10.0.0.80"

let base_config = Config.with_classification false Config.default

let confirm_config =
  Config.with_confirm (Some Confirm.default_config) base_config

let payload_packet ?(ts = 1.0) payload =
  Packet.build_tcp ~ts ~src:attacker ~dst:victim ~src_port:4321 ~dst_port:80
    payload

let decoy_payload =
  Adversarial.payload ~kind:Adversarial.Decoy_decoder ~size:2048 (Rng.create 23L)

let adm_payload =
  (Admmutate.generate (Rng.create 7L) ~payload:shellcode).Admmutate.code

let test_pipeline_demotes_decoy () =
  let off = Pipeline.create base_config in
  Alcotest.(check bool) "decoy alerts without confirmation" true
    (Pipeline.process_packet off (payload_packet decoy_payload) <> []);
  let on = Pipeline.create confirm_config in
  Alcotest.(check int) "decoy demoted with confirmation" 0
    (List.length (Pipeline.process_packet on (payload_packet decoy_payload)));
  let s = Pipeline.stats on in
  Alcotest.(check bool) "refutation counted" true (s.Stats.refuted >= 1);
  Alcotest.(check int) "nothing confirmed" 0 s.Stats.confirmed

let test_pipeline_promotes_decoder () =
  let on = Pipeline.create confirm_config in
  let alerts = Pipeline.process_packet on (payload_packet adm_payload) in
  Alcotest.(check bool) "decoder still alerts" true (alerts <> []);
  List.iter
    (fun (a : Alert.t) ->
      Alcotest.(check bool) "alert marked confirmed" true a.Alert.confirmed)
    alerts;
  let s = Pipeline.stats on in
  Alcotest.(check bool) "confirmation counted" true (s.Stats.confirmed >= 1);
  Alcotest.(check int) "nothing refuted" 0 s.Stats.refuted

let test_pipeline_confirm_off_pristine () =
  let off = Pipeline.create base_config in
  let alerts = Pipeline.process_packet off (payload_packet adm_payload) in
  Alcotest.(check bool) "alerts without confirmation" true (alerts <> []);
  List.iter
    (fun (a : Alert.t) ->
      Alcotest.(check bool) "not marked confirmed" false a.Alert.confirmed)
    alerts;
  let s = Pipeline.stats off in
  Alcotest.(check int) "no confirm metrics" 0
    (s.Stats.confirmed + s.Stats.refuted + s.Stats.confirm_inconclusive)

let test_cache_admission () =
  (* refuted analyses must not enter the verdict cache; confirmed ones
     must *)
  let on = Pipeline.create confirm_config in
  ignore (Pipeline.process_packet on (payload_packet ~ts:1.0 decoy_payload));
  ignore (Pipeline.process_packet on (payload_packet ~ts:2.0 decoy_payload));
  Alcotest.(check int) "refuted payload never cached" 0
    (Pipeline.stats on).Stats.verdict_cache_hits;
  let on = Pipeline.create confirm_config in
  ignore (Pipeline.process_packet on (payload_packet ~ts:1.0 adm_payload));
  ignore (Pipeline.process_packet on (payload_packet ~ts:2.0 adm_payload));
  Alcotest.(check bool) "confirmed payload cached" true
    ((Pipeline.stats on).Stats.verdict_cache_hits >= 1)

let test_benign_pipeline_unconfirmed () =
  let clients = Ipaddr.prefix_of_string "10.1.0.0/16" in
  let servers = Ipaddr.prefix_of_string "10.2.0.0/16" in
  let on = Pipeline.create confirm_config in
  let pkts =
    Benign_gen.packets (Rng.create 5L) ~n:100 ~t0:0.0 ~clients ~servers
  in
  Alcotest.(check int) "benign stays silent under confirmation" 0
    (List.length (Pipeline.process_packets on pkts));
  Alcotest.(check int) "nothing confirmed on benign traffic" 0
    (Pipeline.stats on).Stats.confirmed

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "confirm"
    [
      ( "outcomes",
        [
          Alcotest.test_case "admmutate decoders confirm" `Quick test_admmutate_confirms;
          Alcotest.test_case "staged decoders confirm" `Quick test_admmutate_staged_confirms;
          Alcotest.test_case "clet decoders confirm" `Quick test_clet_confirms;
          Alcotest.test_case "shellcodes confirm" `Quick test_shellcodes_confirm;
          Alcotest.test_case "benign never confirms" `Quick test_benign_never_confirms;
          Alcotest.test_case "decoy decoders refuted" `Quick test_decoy_refuted;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ( "classification",
        [
          Alcotest.test_case "execve registers" `Quick test_execve_register_check;
          Alcotest.test_case "socketcall registers" `Quick test_socketcall_register_check;
          Alcotest.test_case "non-linux interrupt" `Quick test_non_linux_interrupt_refutes;
          Alcotest.test_case "fault refutes" `Quick test_fault_refutes;
          Alcotest.test_case "budget inconclusive" `Quick test_budget_inconclusive;
          Alcotest.test_case "seed failures" `Quick test_seed_failures_inconclusive;
        ] );
      ( "config",
        [
          Alcotest.test_case "spec roundtrip" `Quick test_config_spec_roundtrip;
          Alcotest.test_case "lint codes" `Quick test_config_lint_codes;
          Alcotest.test_case "of_spec" `Quick test_config_of_spec;
        ] );
      ( "emulator-api",
        [ Alcotest.test_case "mem _opt bounds" `Quick test_mem_opt_bounds ] );
      ( "harness",
        [
          Alcotest.test_case "pass/fail/filter/jobs" `Quick test_harness_pass_and_fail;
          Alcotest.test_case "errors" `Quick test_harness_errors;
          Alcotest.test_case "json reader" `Quick test_json_reader;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "decoy demoted" `Quick test_pipeline_demotes_decoy;
          Alcotest.test_case "decoder promoted" `Quick test_pipeline_promotes_decoder;
          Alcotest.test_case "confirm off pristine" `Quick test_pipeline_confirm_off_pristine;
          Alcotest.test_case "cache admission" `Quick test_cache_admission;
          Alcotest.test_case "benign unconfirmed" `Quick test_benign_pipeline_unconfirmed;
        ] );
    ]
