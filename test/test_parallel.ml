(* Tests for the multicore bulk-processing path: shard-equivalence with
   the sequential pipeline, determinism, and cross-batch state. *)

open Sanids_net
open Sanids_nids
open Sanids_exploits

let ip = Ipaddr.of_string
let clients = Ipaddr.prefix_of_string "172.18.0.0/16"
let servers = Ipaddr.prefix_of_string "172.19.0.0/16"
let unused = Ipaddr.prefix_of_string "172.19.200.0/21"
let honeypot = ip "172.19.0.250"

let config =
  Config.default
  |> Config.with_honeypots [ honeypot ]
  |> Config.with_unused [ unused ]

(* a mixed workload with known malicious content *)
let workload () =
  let rng = Rng.create 0x9A7A_11E1L in
  let benign = Sanids_workload.Benign_gen.packets rng ~n:2000 ~t0:0.0 ~clients ~servers in
  let attack1 =
    let src = ip "198.51.100.1" in
    List.init 6 (fun s ->
        Sanids_workload.Worm_gen.scan_packet rng ~ts:(float_of_int s) ~src ~unused)
    @ [
        Exploit_gen.packet rng ~ts:7.0 ~src ~dst:(Ipaddr.nth servers 80)
          ~shellcode:(Shellcodes.find "classic").Shellcodes.code;
      ]
  in
  let attack2 =
    let src = ip "203.0.113.7" in
    [
      Packet.build_tcp ~ts:10.0 ~src ~dst:honeypot ~src_port:55 ~dst_port:80 "probe";
      Code_red.packet ~ts:11.0 ~src ~dst:(Ipaddr.nth servers 81) ();
    ]
  in
  List.sort (fun a b -> compare a.Packet.ts b.Packet.ts) (benign @ attack1 @ attack2)

let alert_key a =
  Format.asprintf "%s|%s|%s" a.Alert.template (Ipaddr.to_string a.Alert.src)
    (Ipaddr.to_string a.Alert.dst)

let sorted_keys alerts = List.sort compare (List.map alert_key alerts)

let test_matches_sequential () =
  let pkts = workload () in
  let seq_nids = Pipeline.create config in
  let seq_alerts = Pipeline.process_packets seq_nids pkts in
  List.iter
    (fun domains ->
      let par_alerts, stats = Parallel.process ~domains config pkts in
      Alcotest.(check (list string))
        (Printf.sprintf "same alerts with %d domains" domains)
        (sorted_keys seq_alerts) (sorted_keys par_alerts);
      Alcotest.(check int)
        (Printf.sprintf "packet count with %d domains" domains)
        (List.length pkts) stats.Stats.packets)
    [ 1; 2; 4 ]

let test_deterministic () =
  let pkts = workload () in
  let a1, _ = Parallel.process ~domains:4 config pkts in
  let a2, _ = Parallel.process ~domains:4 config pkts in
  Alcotest.(check (list string)) "repeatable" (sorted_keys a1) (sorted_keys a2)

let test_sharding_consistent () =
  (* all packets of one source land in one shard *)
  let src = ip "198.51.100.1" in
  let k = Parallel.shard_of src ~shards:4 in
  for _ = 1 to 10 do
    Alcotest.(check int) "stable shard" k (Parallel.shard_of src ~shards:4)
  done

let test_streaming_cross_batch_state () =
  (* scans in one batch, exploit in a later batch: the scan counters must
     persist across the batch boundary *)
  let rng = Rng.create 0x9A7A_11E2L in
  let src = ip "198.51.100.9" in
  let scans =
    List.init 6 (fun s ->
        Sanids_workload.Worm_gen.scan_packet rng ~ts:(float_of_int s) ~src ~unused)
  in
  let exploit =
    Exploit_gen.packet rng ~ts:9.0 ~src ~dst:(Ipaddr.nth servers 9)
      ~shellcode:(Shellcodes.find "classic").Shellcodes.code
  in
  let all = scans @ [ exploit ] in
  let collected = ref [] in
  let stats =
    Parallel.process_seq ~domains:2 ~batch:3 config (List.to_seq all) (fun alerts ->
        collected := alerts @ !collected)
  in
  Alcotest.(check bool) "exploit detected across batches" true
    (List.exists (fun a -> a.Alert.template = "shell-spawn") !collected);
  Alcotest.(check int) "all packets counted" (List.length all) stats.Stats.packets

let test_streaming_matches_batch () =
  let pkts = workload () in
  let batch_alerts, _ = Parallel.process ~domains:2 config pkts in
  let collected = ref [] in
  let _ =
    Parallel.process_seq ~domains:2 ~batch:500 config (List.to_seq pkts)
      (fun alerts -> collected := alerts @ !collected)
  in
  Alcotest.(check (list string)) "stream equals batch"
    (sorted_keys batch_alerts) (sorted_keys !collected)

let () =
  Alcotest.run "parallel"
    [
      ( "equivalence",
        [
          Alcotest.test_case "matches sequential" `Quick test_matches_sequential;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "sharding consistent" `Quick test_sharding_consistent;
        ] );
      ( "streaming",
        [
          Alcotest.test_case "cross-batch state" `Quick test_streaming_cross_batch_state;
          Alcotest.test_case "stream equals batch" `Quick test_streaming_matches_batch;
        ] );
    ]
