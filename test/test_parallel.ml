(* Tests for the multicore bulk-processing path: shard-equivalence with
   the sequential pipeline, determinism, and cross-batch state. *)

open Sanids_net
open Sanids_nids
open Sanids_exploits
module Obs = Sanids_obs

let ip = Ipaddr.of_string
let clients = Ipaddr.prefix_of_string "172.18.0.0/16"
let servers = Ipaddr.prefix_of_string "172.19.0.0/16"
let unused = Ipaddr.prefix_of_string "172.19.200.0/21"
let honeypot = ip "172.19.0.250"

let config =
  Config.default
  |> Config.with_honeypots [ honeypot ]
  |> Config.with_unused [ unused ]

(* a mixed workload with known malicious content *)
let workload () =
  let rng = Rng.create 0x9A7A_11E1L in
  let benign = Sanids_workload.Benign_gen.packets rng ~n:2000 ~t0:0.0 ~clients ~servers in
  let attack1 =
    let src = ip "198.51.100.1" in
    List.init 6 (fun s ->
        Sanids_workload.Worm_gen.scan_packet rng ~ts:(float_of_int s) ~src ~unused)
    @ [
        Exploit_gen.packet rng ~ts:7.0 ~src ~dst:(Ipaddr.nth servers 80)
          ~shellcode:(Shellcodes.find "classic").Shellcodes.code;
      ]
  in
  let attack2 =
    let src = ip "203.0.113.7" in
    [
      Packet.build_tcp ~ts:10.0 ~src ~dst:honeypot ~src_port:55 ~dst_port:80 "probe";
      Code_red.packet ~ts:11.0 ~src ~dst:(Ipaddr.nth servers 81) ();
    ]
  in
  List.sort (fun a b -> compare a.Packet.ts b.Packet.ts) (benign @ attack1 @ attack2)

let alert_key a =
  Format.asprintf "%s|%s|%s" a.Alert.template (Ipaddr.to_string a.Alert.src)
    (Ipaddr.to_string a.Alert.dst)

let sorted_keys alerts = List.sort compare (List.map alert_key alerts)

let test_matches_sequential () =
  let pkts = workload () in
  let seq_nids = Pipeline.create config in
  let seq_alerts = Pipeline.process_packets seq_nids pkts in
  List.iter
    (fun domains ->
      let par_alerts, stats = Parallel.process ~domains config pkts in
      Alcotest.(check (list string))
        (Printf.sprintf "same alerts with %d domains" domains)
        (sorted_keys seq_alerts) (sorted_keys par_alerts);
      Alcotest.(check int)
        (Printf.sprintf "packet count with %d domains" domains)
        (List.length pkts) stats.Stats.packets)
    [ 1; 2; 4 ]

let test_deterministic () =
  let pkts = workload () in
  let a1, _ = Parallel.process ~domains:4 config pkts in
  let a2, _ = Parallel.process ~domains:4 config pkts in
  Alcotest.(check (list string)) "repeatable" (sorted_keys a1) (sorted_keys a2)

let test_sharding_consistent () =
  (* all packets of one source land in one shard *)
  let src = ip "198.51.100.1" in
  let k = Parallel.shard_of src ~shards:4 in
  for _ = 1 to 10 do
    Alcotest.(check int) "stable shard" k (Parallel.shard_of src ~shards:4)
  done

let test_streaming_cross_batch_state () =
  (* scans in one batch, exploit in a later batch: the scan counters must
     persist across the batch boundary *)
  let rng = Rng.create 0x9A7A_11E2L in
  let src = ip "198.51.100.9" in
  let scans =
    List.init 6 (fun s ->
        Sanids_workload.Worm_gen.scan_packet rng ~ts:(float_of_int s) ~src ~unused)
  in
  let exploit =
    Exploit_gen.packet rng ~ts:9.0 ~src ~dst:(Ipaddr.nth servers 9)
      ~shellcode:(Shellcodes.find "classic").Shellcodes.code
  in
  let all = scans @ [ exploit ] in
  let collected = ref [] in
  let stats =
    Parallel.process_seq ~domains:2 ~batch:3 config (List.to_seq all) (fun alerts ->
        collected := alerts @ !collected)
  in
  Alcotest.(check bool) "exploit detected across batches" true
    (List.exists (fun a -> a.Alert.template = "shell-spawn") !collected);
  Alcotest.(check int) "all packets counted" (List.length all) stats.Stats.packets

let test_streaming_matches_batch () =
  let pkts = workload () in
  let batch_alerts, _ = Parallel.process ~domains:2 config pkts in
  let collected = ref [] in
  let _ =
    Parallel.process_seq ~domains:2 ~batch:500 config (List.to_seq pkts)
      (fun alerts -> collected := alerts @ !collected)
  in
  Alcotest.(check (list string)) "stream equals batch"
    (sorted_keys batch_alerts) (sorted_keys !collected)

(* ------------------------------------------------------------------ *)
(* Snapshot.merge is a commutative monoid — the law the sharded design
   rests on.  Gauge values and histogram observations are integer-valued
   so float addition is exact and equality is meaningful. *)

let hist_snap obs =
  let h = Obs.Histogram.create () in
  List.iter (fun n -> Obs.Histogram.observe h (float_of_int n)) obs;
  Obs.Histogram.snap h

let snapshot_gen =
  let open QCheck2.Gen in
  let entry =
    oneof
      [
        map2
          (fun i n -> (Printf.sprintf "c%d_total" (i mod 3), Obs.Snapshot.Counter (n mod 500)))
          small_nat small_nat;
        map2
          (fun i n ->
            (Printf.sprintf "g%d" (i mod 3), Obs.Snapshot.Gauge (float_of_int (n mod 500))))
          small_nat small_nat;
        map2
          (fun i obs -> (Printf.sprintf "h%d_seconds" (i mod 2), Obs.Snapshot.Hist (hist_snap obs)))
          small_nat
          (list_size (int_range 0 6) (int_range 0 30));
      ]
  in
  map Obs.Snapshot.of_list (list_size (int_range 0 10) entry)

let prop_merge_commutative =
  QCheck2.Test.make ~name:"Snapshot.merge commutative" ~count:200
    QCheck2.Gen.(pair snapshot_gen snapshot_gen)
    (fun (a, b) ->
      Obs.Snapshot.equal (Obs.Snapshot.merge a b) (Obs.Snapshot.merge b a))

let prop_merge_associative =
  QCheck2.Test.make ~name:"Snapshot.merge associative" ~count:200
    QCheck2.Gen.(triple snapshot_gen snapshot_gen snapshot_gen)
    (fun (a, b, c) ->
      Obs.Snapshot.equal
        (Obs.Snapshot.merge (Obs.Snapshot.merge a b) c)
        (Obs.Snapshot.merge a (Obs.Snapshot.merge b c)))

let prop_merge_identity =
  QCheck2.Test.make ~name:"Snapshot.empty is the merge identity" ~count:200
    snapshot_gen
    (fun a ->
      Obs.Snapshot.equal (Obs.Snapshot.merge Obs.Snapshot.empty a) a
      && Obs.Snapshot.equal (Obs.Snapshot.merge a Obs.Snapshot.empty) a)

(* Merged per-domain registries equal the sequential pipeline's registry
   on the same workload.  Verdict caching is off: with it on, a payload
   seen in two shards is two cache misses but one sequentially, so cache
   counters are legitimately shard-dependent. *)
let test_registry_parity () =
  let pkts = workload () in
  let cfg = config |> Config.with_verdict_cache 0 in
  let seq = Pipeline.create cfg in
  let _ = Pipeline.process_packets seq pkts in
  (* timing histograms are wall-clock and never match; compare the typed
     counter view with the timing field masked *)
  let mask s = { s with Stats.analysis_seconds = 0.0 } in
  let render s = Format.asprintf "%a" Stats.pp (mask s) in
  let seq_stats = Pipeline.stats seq in
  List.iter
    (fun domains ->
      let _, snap = Parallel.process_snapshot ~domains cfg pkts in
      Alcotest.(check string)
        (Printf.sprintf "counters match sequential with %d domains" domains)
        (render seq_stats)
        (render (Stats.of_snapshot snap)))
    [ 1; 2; 4 ]

let merge_properties =
  List.map QCheck_alcotest.to_alcotest
    [ prop_merge_commutative; prop_merge_associative; prop_merge_identity ]

let () =
  Alcotest.run "parallel"
    [
      ( "equivalence",
        [
          Alcotest.test_case "matches sequential" `Quick test_matches_sequential;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "sharding consistent" `Quick test_sharding_consistent;
          Alcotest.test_case "registry parity" `Quick test_registry_parity;
        ] );
      ("merge-laws", merge_properties);
      ( "streaming",
        [
          Alcotest.test_case "cross-batch state" `Quick test_streaming_cross_batch_state;
          Alcotest.test_case "stream equals batch" `Quick test_streaming_matches_batch;
        ] );
    ]
