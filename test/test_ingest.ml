(* The resilient-ingest contract: typed decode errors for arbitrary
   (fault-mutated) captures with zero escaping exceptions, per-reason
   accounting that reconciles exactly, bounded-queue load shedding, and
   worker-domain crash isolation. *)

open Sanids_net
open Sanids_nids
module Obs = Sanids_obs
module Pcap = Sanids_pcap.Pcap
module Ingest = Sanids_ingest.Ingest
module Fault = Sanids_ingest.Fault

let ip = Ipaddr.of_string
let clients = Ipaddr.prefix_of_string "172.18.0.0/16"
let servers = Ipaddr.prefix_of_string "172.19.0.0/16"

let benign n seed =
  Sanids_workload.Benign_gen.packets (Rng.create seed) ~n ~t0:0.0 ~clients ~servers

(* ------------------------------------------------------------------ *)
(* typed decode errors *)

let test_decode_file () =
  (match Ingest.decode_file "not a pcap" with
  | Error (Ingest.Pcap_framing _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Ingest.error_to_string e)
  | Ok _ -> Alcotest.fail "garbage decoded");
  let pkts = benign 20 0xFEEDL in
  match Ingest.decode_file (Pcap.encode (Pcap.of_packets pkts)) with
  | Ok f -> Alcotest.(check int) "all records" 20 (List.length f.Pcap.records)
  | Error e -> Alcotest.failf "valid capture rejected: %s" (Ingest.error_to_string e)

let test_decode_record () =
  let pkt = List.hd (benign 1 0xBEEFL) in
  let record data =
    { Pcap.ts = 1.0; orig_len = String.length data; data = Slice.of_string data }
  in
  let raw = Packet.to_bytes pkt in
  (match Ingest.decode_record ~linktype:Pcap.linktype_raw (record raw) with
  | Ok p -> Alcotest.(check bool) "same src" true (Ipaddr.equal (Packet.src p) (Packet.src pkt))
  | Error e -> Alcotest.failf "valid record rejected: %s" (Ingest.error_to_string e));
  (match
     Ingest.decode_record ~linktype:Pcap.linktype_raw
       (record (String.sub raw 0 10))
   with
  | Error (Ingest.Ipv4_header _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Ingest.error_to_string e)
  | Ok _ -> Alcotest.fail "truncated header decoded");
  (match Ingest.decode_record ~linktype:12345 (record raw) with
  | Error (Ingest.Link_layer _) -> ()
  | _ -> Alcotest.fail "unknown linktype accepted");
  (match
     Ingest.decode_record ~linktype:Pcap.linktype_ethernet
       (record (Ethernet.wrap_ipv4 raw))
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "ethernet frame rejected: %s" (Ingest.error_to_string e));
  match Ingest.decode_record ~max_payload:8 ~linktype:Pcap.linktype_raw (record raw) with
  | Error (Ingest.Payload_bound _) -> ()
  | _ -> Alcotest.fail "oversized record admitted"

let test_reason_labels () =
  Alcotest.(check (list string))
    "label values" [ "pcap_framing"; "link_layer"; "ipv4"; "tcp"; "udp"; "payload_bound" ]
    Ingest.reasons;
  Alcotest.(check string) "reason of framing" "pcap_framing"
    (Ingest.reason (Ingest.Pcap_framing "x"))

(* ------------------------------------------------------------------ *)
(* fault specs *)

let test_fault_spec () =
  let spec = "truncate=0.1,bitflip=0.05,dup=0.01,reorder=0.2,garbage=0.02" in
  (match Fault.of_string spec with
  | Ok plan -> Alcotest.(check string) "roundtrip" spec (Fault.to_string plan)
  | Error m -> Alcotest.failf "valid spec rejected: %s" m);
  (match Fault.of_string "meteor=0.5" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown kind accepted");
  (match Fault.of_string "truncate=1.5" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "probability > 1 accepted");
  match Fault.of_string "truncate" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing probability accepted"

let test_fault_deterministic () =
  let records = Pcap.of_packets (benign 200 0xABCL) in
  let plan = Fault.of_string_exn "truncate=0.3,bitflip=0.3,dup=0.2,reorder=0.2,garbage=0.2" in
  let a = Fault.records ~seed:42L plan records in
  let b = Fault.records ~seed:42L plan records in
  Alcotest.(check bool) "same seed, same corruption" true (a = b);
  let c = Fault.records ~seed:43L plan records in
  Alcotest.(check bool) "different seed, different corruption" true (a <> c)

(* ------------------------------------------------------------------ *)
(* the headline property: no fault plan makes ingest raise *)

let fault_gen =
  let open QCheck2.Gen in
  let prob = float_bound_inclusive 1.0 in
  let kind =
    oneofl
      [ Fault.Truncate; Fault.Bit_flip; Fault.Duplicate; Fault.Reorder;
        Fault.Garbage_prepend ]
  in
  list_size (int_range 1 8) (pair kind prob)

let prop_never_raises =
  QCheck2.Test.make ~name:"fault-mutated captures never raise" ~count:60
    QCheck2.Gen.(triple fault_gen int64 (int_range 1 40))
    (fun (plan, seed, n) ->
      let pkts = benign n (Int64.add seed 7L) in
      let file =
        Fault.file ~seed plan
          { Pcap.nanos = false; linktype = Pcap.linktype_raw;
            records = Pcap.of_packets pkts }
      in
      (* every record decodes to Ok or a typed Error — an exception here
         fails the property *)
      List.iter (fun r -> ignore (Ingest.decode_record ~linktype:file.Pcap.linktype r))
        file.Pcap.records;
      (* and the re-encoded capture survives file-level decode too *)
      (match Ingest.decode_file (Pcap.encode ~linktype:file.Pcap.linktype file.Pcap.records) with
      | Ok _ | Error _ -> ());
      true)

(* ------------------------------------------------------------------ *)
(* the acceptance fuzz: >= 10k mutated records, full accounting *)

let test_fuzz_reconciliation () =
  let pkts = benign 8_000 0x5EED5EEDL in
  let plan =
    Fault.of_string_exn "truncate=0.25,bitflip=0.25,dup=0.4,reorder=0.1,garbage=0.15"
  in
  let file = Fault.file ~seed:0xF00DL plan
      { Pcap.nanos = false; linktype = Pcap.linktype_raw;
        records = Pcap.of_packets pkts }
  in
  let n_records = List.length file.Pcap.records in
  Alcotest.(check bool)
    (Printf.sprintf "fuzz corpus is large enough (%d records)" n_records)
    true (n_records >= 10_000);
  let reg = Obs.Registry.create () in
  let m = Ingest.metrics reg in
  let packets = Ingest.ok_packets ~metrics:m file in
  (* shed aggressively while analyzing, then check the identity
     records_in = packets_analyzed + errors + shed on the merged export *)
  let cfg =
    Config.default
    |> Config.with_stream_queue 64
    |> Config.with_stream_policy Bqueue.Drop_oldest
  in
  let snap =
    Parallel.process_seq_snapshot ~domains:4 ~batch:32 cfg (List.to_seq packets)
      (fun _ -> ())
  in
  let snap = Obs.Snapshot.merge snap (Obs.Registry.snapshot reg) in
  let records = Obs.Snapshot.counter_value snap Ingest.records_total in
  let analyzed = Obs.Snapshot.counter_value snap "sanids_packets_total" in
  let errors = Obs.Snapshot.counter_sum snap Ingest.errors_total in
  let shed = Obs.Snapshot.counter_sum snap "sanids_shed_total" in
  Alcotest.(check int) "records seen by ingest" n_records records;
  Alcotest.(check bool) "mutations actually rejected records" true (errors > 0);
  Alcotest.(check int)
    (Printf.sprintf "records = analyzed(%d) + errors(%d) + shed(%d)" analyzed
       errors shed)
    records
    (analyzed + errors + shed)

(* ------------------------------------------------------------------ *)
(* bounded admission queues *)

let test_bqueue_drop_newest () =
  let q = Bqueue.create ~capacity:2 Bqueue.Drop_newest in
  Alcotest.(check bool) "first queued" true (Bqueue.push q 1 = Bqueue.Queued);
  Alcotest.(check bool) "second queued" true (Bqueue.push q 2 = Bqueue.Queued);
  Alcotest.(check bool) "third shed" true (Bqueue.push q 3 = Bqueue.Shed_newest);
  Bqueue.close q;
  Alcotest.(check (list int)) "oldest survive" [ 1; 2 ] (Bqueue.pop_batch q ~max:10);
  Alcotest.(check (list int)) "closed and drained" [] (Bqueue.pop_batch q ~max:10)

let test_bqueue_drop_oldest () =
  let q = Bqueue.create ~capacity:2 Bqueue.Drop_oldest in
  ignore (Bqueue.push q 1);
  ignore (Bqueue.push q 2);
  Alcotest.(check bool) "head evicted" true (Bqueue.push q 3 = Bqueue.Shed_oldest 1);
  Bqueue.close q;
  Alcotest.(check (list int)) "newest survive" [ 2; 3 ] (Bqueue.pop_batch q ~max:10);
  Alcotest.(check bool) "push after close is shed" true
    (Bqueue.push q 4 = Bqueue.Shed_newest)

let test_bqueue_block_backpressure () =
  (* a slow consumer never loses anything under Block: the producer just
     waits.  4-deep queue, 200 items, order preserved end to end. *)
  let q = Bqueue.create ~capacity:4 Bqueue.Block in
  let producer =
    Domain.spawn (fun () ->
        for i = 1 to 200 do
          assert (Bqueue.push q i = Bqueue.Queued)
        done;
        Bqueue.close q)
  in
  let rec drain acc =
    match Bqueue.pop_batch q ~max:3 with
    | [] -> List.rev acc
    | chunk -> drain (List.rev_append chunk acc)
  in
  let got = drain [] in
  Domain.join producer;
  Alcotest.(check (list int)) "lossless in order" (List.init 200 (fun i -> i + 1)) got

(* ------------------------------------------------------------------ *)
(* worker crash isolation *)

let test_worker_isolation () =
  (* an alert callback that bombs kills its worker loop; the run must
     still complete, count the failure, and keep the accounting whole *)
  let unused = Ipaddr.prefix_of_string "172.19.200.0/21" in
  let cfg = Config.default |> Config.with_unused [ unused ] in
  let rng = Rng.create 0xD1EL in
  let src = ip "198.51.100.77" in
  let attack =
    List.init 6 (fun s ->
        Sanids_workload.Worm_gen.scan_packet rng ~ts:(float_of_int s) ~src ~unused)
    @ [
        Sanids_exploits.Exploit_gen.packet rng ~ts:7.0 ~src
          ~dst:(Ipaddr.nth servers 80)
          ~shellcode:
            (Sanids_exploits.Shellcodes.find "classic").Sanids_exploits.Shellcodes.code;
      ]
  in
  let pkts = benign 100 0xCAFEL @ attack in
  let stats =
    Parallel.process_seq ~domains:2 ~batch:8 cfg (List.to_seq pkts) (fun _ ->
        failwith "alert sink is down")
  in
  Alcotest.(check bool) "the crash was counted" true (stats.Stats.worker_failures >= 1);
  Alcotest.(check int) "every packet accounted for" (List.length pkts)
    (stats.Stats.packets + stats.Stats.shed)

(* ------------------------------------------------------------------ *)
(* non-raising constructor satellites *)

let test_opt_constructors () =
  Alcotest.(check bool) "mac some" true
    (Ethernet.mac_of_string_opt "aa:bb:cc:dd:ee:ff" <> None);
  Alcotest.(check bool) "mac none" true (Ethernet.mac_of_string_opt "zz:zz" = None);
  Alcotest.(check (option string)) "hex some" (Some "\xde\xad")
    (Hexdump.decode_opt "dead");
  Alcotest.(check (option string)) "hex odd" None (Hexdump.decode_opt "abc");
  Alcotest.(check (option string)) "hex junk" None (Hexdump.decode_opt "zz");
  Alcotest.(check bool) "prefix some" true
    (Ipaddr.prefix_of_string_opt "10.0.0.0/8" <> None);
  Alcotest.(check bool) "prefix none" true
    (Ipaddr.prefix_of_string_opt "10.0.0.0/99" = None)

let properties = List.map QCheck_alcotest.to_alcotest [ prop_never_raises ]

let () =
  Alcotest.run "ingest"
    [
      ( "typed-errors",
        [
          Alcotest.test_case "decode_file" `Quick test_decode_file;
          Alcotest.test_case "decode_record" `Quick test_decode_record;
          Alcotest.test_case "reason labels" `Quick test_reason_labels;
          Alcotest.test_case "opt constructors" `Quick test_opt_constructors;
        ] );
      ( "fault",
        [
          Alcotest.test_case "spec parse/print" `Quick test_fault_spec;
          Alcotest.test_case "seeded determinism" `Quick test_fault_deterministic;
        ] );
      ("never-raises", properties);
      ( "accounting",
        [ Alcotest.test_case "10k-record fuzz reconciles" `Quick test_fuzz_reconciliation ] );
      ( "bqueue",
        [
          Alcotest.test_case "drop_newest" `Quick test_bqueue_drop_newest;
          Alcotest.test_case "drop_oldest" `Quick test_bqueue_drop_oldest;
          Alcotest.test_case "block backpressure" `Quick test_bqueue_block_backpressure;
        ] );
      ( "isolation",
        [ Alcotest.test_case "worker survives callback crash" `Quick test_worker_isolation ] );
    ]
