(* Smoke and golden tests for the rendering surface and small API corners
   that the behavioural suites do not reach. *)

open Sanids_x86
open Sanids_ir

let reg r = Insn.Reg r
let imm v = Insn.Imm v

let check_pp expected i =
  Alcotest.(check string) expected expected (Pretty.to_string i)

let test_pretty_goldens () =
  check_pp "mov eax, 0x2a" (Insn.Mov (Insn.S32bit, reg Reg.EAX, imm 0x2Al));
  check_pp "mov al, 5" (Insn.Mov (Insn.S8bit, Insn.Reg8 Reg.AL, imm 5l));
  check_pp "xor byte ptr [eax], 0x95"
    (Insn.Arith (Insn.Xor, Insn.S8bit, Insn.Mem (Insn.mem_base Reg.EAX), imm 0x95l));
  check_pp "mov dword ptr [ebx+0x10], ecx"
    (Insn.Mov (Insn.S32bit, Insn.Mem (Insn.mem_base_disp Reg.EBX 0x10l), reg Reg.ECX));
  check_pp "mov eax, dword ptr [ebx+ecx*4]"
    (Insn.Mov
       ( Insn.S32bit,
         reg Reg.EAX,
         Insn.Mem { Insn.base = Some Reg.EBX; index = Some (Reg.ECX, Insn.S4); disp = 0l } ));
  check_pp "mov eax, dword ptr [ebp-4]"
    (Insn.Mov (Insn.S32bit, reg Reg.EAX, Insn.Mem (Insn.mem_base_disp Reg.EBP (-4l))));
  check_pp "lea esi, [edi+1]" (Insn.Lea (Reg.ESI, Insn.mem_base_disp Reg.EDI 1l));
  check_pp "jmp $+5" (Insn.Jmp_rel 5);
  check_pp "jne $-12" (Insn.Jcc_rel (Insn.NE, -12));
  check_pp "loop $-6" (Insn.Loop (-6));
  check_pp "int 0x80" (Insn.Int 0x80);
  check_pp "push 0x68732f2f" (Insn.Push_imm 0x68732f2fl);
  check_pp "shl eax, 5" (Insn.Shift (Insn.Shl, Insn.S32bit, reg Reg.EAX, 5));
  check_pp "rep movsb" Insn.Rep_movsb;
  check_pp "(bad) 0xff" (Insn.Bad 0xFF)

let test_listing_format () =
  let code = Encode.program [ Insn.Nop; Insn.Ret ] in
  let listing = Format.asprintf "%a" Decode.pp_listing (Decode.all code) in
  Alcotest.(check string) "listing" "0000: nop\n0001: ret" listing

let test_trace_pp () =
  let code = Encode.program [ Insn.Nop; Insn.Int3 ] in
  let rendered = Format.asprintf "%a" Trace.pp (Trace.build code ~entry:0) in
  Alcotest.(check string) "trace" "0000: nop\n0001: int3" rendered

let test_sem_pp_smoke () =
  List.iter
    (fun i ->
      List.iter
        (fun sem ->
          Alcotest.(check bool) "nonempty rendering" true
            (String.length (Format.asprintf "%a" Sem.pp sem) > 0))
        (Sem.lift i))
    [
      Insn.Mov (Insn.S32bit, reg Reg.EAX, imm 1l);
      Insn.Arith (Insn.Xor, Insn.S8bit, Insn.Mem (Insn.mem_base Reg.EAX), imm 1l);
      Insn.Push_imm 4l;
      Insn.Lodsb;
      Insn.Int 0x80;
      Insn.Popad;
    ]

let test_template_pp () =
  let rendered =
    Format.asprintf "%a" Sanids_semantic.Template.pp
      (List.hd Sanids_semantic.Template_lib.xor_decrypt)
  in
  Alcotest.(check bool) "names the template" true
    (String.length rendered > 0
    &&
    let rec has i =
      i + 12 <= String.length rendered
      && (String.sub rendered i 12 = "decrypt-loop" || has (i + 1))
    in
    has 0)

let test_constprop_pp () =
  let st = Constprop.step_insn Constprop.initial (Insn.Mov (Insn.S32bit, reg Reg.EAX, imm 0xABl)) in
  let rendered = Format.asprintf "%a" Constprop.pp st in
  Alcotest.(check bool) "shows eax" true
    (String.length rendered > 0 && String.sub rendered 0 3 = "eax")

(* ------------------------------------------------------------------ *)
(* API corners *)

let test_encode_length_agrees () =
  List.iter
    (fun i ->
      Alcotest.(check int) (Pretty.to_string i)
        (String.length (Encode.insn_to_bytes i))
        (Encode.length i))
    [
      Insn.Nop;
      Insn.Mov (Insn.S32bit, reg Reg.EAX, imm 0x12345678l);
      Insn.Jcc_rel (Insn.E, 300);
      Insn.Rep_stosd;
    ]

let test_decode_at_bounds () =
  let code = Encode.program [ Insn.Nop; Insn.Ret ] in
  (match Decode.at code 1 with
  | Some d -> Alcotest.(check bool) "ret at 1" true (d.Decode.insn = Insn.Ret)
  | None -> Alcotest.fail "expected decode");
  Alcotest.(check bool) "past end" true (Decode.at code 2 = None);
  Alcotest.(check bool) "negative" true (Decode.at code (-1) = None)

let test_asm_assemble_insns () =
  let insns =
    Asm.assemble_insns [ Asm.I Insn.Nop; Asm.Jmp "end"; Asm.Label "end"; Asm.I Insn.Ret ]
  in
  Alcotest.(check int) "three instructions" 3 (List.length insns);
  match insns with
  | [ Insn.Nop; Insn.Jmp_rel 0; Insn.Ret ] -> ()
  | _ -> Alcotest.fail "unexpected stream"

let test_entry_points_limit () =
  let code = String.concat "" (List.init 100 (fun _ -> Encode.insn_to_bytes Insn.Ret)) in
  Alcotest.(check bool) "limit respected" true
    (List.length (Trace.entry_points ~limit:10 code) <= 10)

let test_rng_corners () =
  let t = Rng.create 1L in
  Alcotest.(check bool) "pick_list" true (List.mem (Rng.pick_list t [ 1; 2; 3 ]) [ 1; 2; 3 ]);
  let g = Rng.sample_geometric t 0.5 in
  Alcotest.(check bool) "geometric nonnegative" true (g >= 0);
  (match Rng.pick_list t [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty pick_list must raise");
  Alcotest.(check int) "geometric p=1 is 0" 0 (Rng.sample_geometric t 1.0)

let test_reader_seek_bounds () =
  let r = Byte_io.Reader.of_string "abc" in
  (match Byte_io.Reader.seek r 4 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "seek past end must raise");
  Byte_io.Reader.seek r 3;
  Alcotest.(check bool) "seek to end ok" true (Byte_io.Reader.is_empty r)

let test_stats_pp () =
  let s = { Sanids_nids.Stats.zero with Sanids_nids.Stats.packets = 3 } in
  let rendered = Format.asprintf "%a" Sanids_nids.Stats.pp s in
  Alcotest.(check bool) "mentions packets" true
    (String.length rendered > 8 && String.sub rendered 0 8 = "packets=")

let () =
  Alcotest.run "format"
    [
      ( "pretty",
        [
          Alcotest.test_case "instruction goldens" `Quick test_pretty_goldens;
          Alcotest.test_case "listing" `Quick test_listing_format;
          Alcotest.test_case "trace pp" `Quick test_trace_pp;
          Alcotest.test_case "sem pp" `Quick test_sem_pp_smoke;
          Alcotest.test_case "template pp" `Quick test_template_pp;
          Alcotest.test_case "constprop pp" `Quick test_constprop_pp;
          Alcotest.test_case "stats pp" `Quick test_stats_pp;
        ] );
      ( "corners",
        [
          Alcotest.test_case "encode length" `Quick test_encode_length_agrees;
          Alcotest.test_case "decode at bounds" `Quick test_decode_at_bounds;
          Alcotest.test_case "assemble_insns" `Quick test_asm_assemble_insns;
          Alcotest.test_case "entry points limit" `Quick test_entry_points_limit;
          Alcotest.test_case "rng corners" `Quick test_rng_corners;
          Alcotest.test_case "reader seek" `Quick test_reader_seek_bounds;
        ] );
    ]
