(* The zero-copy slice layer: unit laws, slice-vs-copy equivalence
   (decode and scan must be byte-identical whether they see a whole
   string or an offset view into a larger buffer, including faulted
   captures), and the minor-heap allocation regression guard — the
   measured point of the slice refactor. *)

open Sanids_net
module AC = Sanids_baseline.Aho_corasick
module Extractor = Sanids_extract.Extractor
module Pipeline = Sanids_nids.Pipeline
module Config = Sanids_nids.Config
module Workload = Sanids_workload
module Exploits = Sanids_exploits

(* ------------------------------------------------------------------ *)
(* Unit laws *)

let test_basic_ops () =
  let s = Slice.of_string "hello world" in
  Alcotest.(check int) "length" 11 (Slice.length s);
  Alcotest.(check char) "get" 'w' (Slice.get s 6);
  Alcotest.(check string) "to_string" "hello world" (Slice.to_string s);
  Alcotest.(check bool) "whole view returns backing string itself" true
    (Slice.to_string s == Slice.base s);
  let w = Slice.sub s ~off:6 ~len:5 in
  Alcotest.(check string) "sub" "world" (Slice.to_string w);
  Alcotest.(check int) "sub offset" 6 (Slice.offset w);
  let w2 = Slice.sub w ~off:1 ~len:3 in
  Alcotest.(check string) "sub of sub" "orl" (Slice.to_string w2);
  Alcotest.(check int) "sub of sub offset composes" 7 (Slice.offset w2);
  Alcotest.(check bool) "equal_string" true (Slice.equal_string w "world");
  Alcotest.(check bool) "equal across backings" true
    (Slice.equal w (Slice.of_string "world"));
  Alcotest.(check bool) "empty" true (Slice.is_empty Slice.empty)

let test_word_accessors () =
  let s = Slice.sub (Slice.of_string "zz\x12\x34\x56\x78zz") ~off:2 ~len:4 in
  Alcotest.(check int) "u8" 0x12 (Slice.get_u8 s 0);
  Alcotest.(check int) "u16 be" 0x1234 (Slice.get_u16_be s 0);
  Alcotest.(check int) "u16 le" 0x3412 (Slice.get_u16_le s 0);
  Alcotest.(check int32) "u32 be" 0x12345678l (Slice.get_u32_be s 0);
  Alcotest.(check int32) "u32 le" 0x78563412l (Slice.get_u32_le s 0)

let test_bounds () =
  let s = Slice.sub (Slice.of_string "abcdef") ~off:1 ~len:3 in
  (match Slice.get s 3 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "get past length must raise");
  match Slice.sub s ~off:2 ~len:2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "sub past length must raise"

(* ------------------------------------------------------------------ *)
(* qcheck equivalence laws.  [embedded p junk] is the same bytes as
   [Slice.of_string p] but living at a nonzero offset inside a larger
   buffer — every operation must be offset-invariant. *)

let embedded p (junk1, junk2) =
  Slice.sub
    (Slice.of_string (junk1 ^ p ^ junk2))
    ~off:(String.length junk1) ~len:(String.length p)

let gen_payload_with_junk =
  QCheck2.Gen.(
    triple
      (string_size (int_bound 600))
      (string_size (int_bound 40))
      (string_size (int_bound 40)))

let prop_view_equals_copy =
  QCheck2.Test.make ~name:"view round-trips to the same bytes" ~count:500
    gen_payload_with_junk
    (fun (p, j1, j2) ->
      let v = embedded p (j1, j2) in
      Slice.to_string v = p && Slice.equal v (Slice.of_string p))

let frame_eq (a : Extractor.frame) (b : Extractor.frame) =
  a.Extractor.off = b.Extractor.off
  && a.Extractor.origin = b.Extractor.origin
  && Slice.to_string a.Extractor.data = Slice.to_string b.Extractor.data

let prop_extract_offset_invariant =
  QCheck2.Test.make ~name:"extractor is offset-invariant" ~count:300
    gen_payload_with_junk
    (fun (p, j1, j2) ->
      let whole = Extractor.extract (Slice.of_string p) in
      let viewed = Extractor.extract (embedded p (j1, j2)) in
      List.length whole = List.length viewed
      && List.for_all2 frame_eq whole viewed
      && Extractor.suspicious (Slice.of_string p)
         = Extractor.suspicious (embedded p (j1, j2)))

let ac =
  lazy
    (AC.build
       [ ("/bin/sh", "sh"); ("%u9090", "uni"); ("\xcd\x80", "int80"); ("AAAA", "sled") ])

let prop_ac_slice_equals_string =
  QCheck2.Test.make ~name:"aho-corasick slice scan equals string scan" ~count:500
    gen_payload_with_junk
    (fun (p, j1, j2) ->
      let t = Lazy.force ac in
      AC.search t p = AC.search_slice t (embedded p (j1, j2)))

let prop_search_slice_equals_naive =
  QCheck2.Test.make ~name:"Search.find_slice is offset-invariant" ~count:500
    QCheck2.Gen.(
      pair gen_payload_with_junk (string_size (int_range 1 6)))
    (fun ((p, j1, j2), needle) ->
      Search.find ~needle p
      = Search.find_slice ~needle (embedded p (j1, j2)))

(* Decode equivalence: parsing a packet from a whole string and from an
   offset view of the same bytes yields identical packets. *)
let a_addr = Ipaddr.of_string "10.0.0.1"
let b_addr = Ipaddr.of_string "10.0.0.2"

let prop_parse_view_equals_copy =
  QCheck2.Test.make ~name:"packet parse: view equals copy" ~count:300
    QCheck2.Gen.(
      pair (string_size (int_bound 1200)) (string_size (int_range 1 32)))
    (fun (payload, junk) ->
      let p =
        Packet.build_tcp ~ts:0.0 ~src:a_addr ~dst:b_addr ~src_port:1 ~dst_port:2
          payload
      in
      let raw = Packet.to_bytes p in
      let view =
        Slice.sub
          (Slice.of_string (junk ^ raw ^ junk))
          ~off:(String.length junk) ~len:(String.length raw)
      in
      match (Packet.parse ~ts:0.0 raw, Packet.parse_slice ~ts:0.0 view) with
      | Ok p1, Ok p2 ->
          Slice.equal (Packet.payload p1) (Packet.payload p2)
          && Packet.ports p1 = Packet.ports p2
          && Ipaddr.equal (Packet.src p1) (Packet.src p2)
      | Error e1, Error e2 -> e1 = e2
      | _ -> false)

(* Fault equivalence: a faulted record decodes identically whether its
   body is a view (what Fault.Truncate produces: an O(1) re-view) or a
   fresh copy of the same bytes. *)
let prop_faulted_decode_view_equals_copy =
  QCheck2.Test.make ~name:"faulted record decode: view equals copy" ~count:100
    QCheck2.Gen.(pair (int_bound 10_000) (int_bound 1000))
    (fun (seed, salt) ->
      let rng = Rng.create (Int64.of_int (0xFA017 + salt)) in
      let pkts =
        Workload.Benign_gen.packets rng ~n:8 ~t0:0.0
          ~clients:(Ipaddr.prefix_of_string "10.1.0.0/24")
          ~servers:(Ipaddr.prefix_of_string "10.2.0.0/24")
      in
      let records =
        List.map
          (fun p ->
            let raw = Packet.to_bytes p in
            {
              Sanids_pcap.Pcap.ts = 0.0;
              orig_len = String.length raw;
              data = Slice.of_string raw;
            })
          pkts
      in
      let plan =
        [ (Sanids_ingest.Fault.Truncate, 0.5); (Sanids_ingest.Fault.Bit_flip, 0.5) ]
      in
      let faulted =
        Sanids_ingest.Fault.records ~seed:(Int64.of_int seed) plan records
      in
      List.for_all
        (fun (r : Sanids_pcap.Pcap.record) ->
          let copy =
            { r with Sanids_pcap.Pcap.data = Slice.of_string (Slice.to_string r.Sanids_pcap.Pcap.data) }
          in
          let d x =
            Sanids_ingest.Ingest.decode_record
              ~linktype:Sanids_pcap.Pcap.linktype_raw x
          in
          match (d r, d copy) with
          | Ok p1, Ok p2 ->
              Slice.equal (Packet.payload p1) (Packet.payload p2)
          | Error _, Error _ -> true
          | _ -> false)
        faulted)

(* ------------------------------------------------------------------ *)
(* Allocation regression: minor-heap words/packet, measured with the
   same harness as the pre-change numbers (PR 6).  Bounds are the
   pre-change measurements; the slice path must stay strictly below. *)

let words_per f ~n =
  let w0 = Gc.minor_words () in
  f ();
  (Gc.minor_words () -. w0) /. float_of_int n

let clients = Ipaddr.prefix_of_string "192.168.1.0/24"
let servers = Ipaddr.prefix_of_string "192.168.2.0/24"

let check_below name bound v =
  if v >= bound then
    Alcotest.failf "%s: %.1f minor words/packet, must stay below %.1f" name v bound

let test_alloc_decode () =
  let rng = Rng.create 0x0B0B0B0BL in
  let n = 4000 in
  let pkts = Workload.Benign_gen.packets rng ~n ~t0:0.0 ~clients ~servers in
  let file_bytes = Sanids_pcap.Pcap.encode (Sanids_pcap.Pcap.of_packets pkts) in
  let sink = ref 0 in
  let w =
    words_per ~n (fun () ->
        let f = Sanids_pcap.Pcap.decode_exn file_bytes in
        sink := List.length (Sanids_ingest.Ingest.ok_packets f))
  in
  Alcotest.(check int) "all decoded" n !sink;
  (* pre-change (copying decode chain): 181.8 *)
  check_below "decode" 181.8 w

let test_alloc_replay () =
  let rng = Rng.create 0x0B0B0B0BL in
  let variants =
    [|
      Exploits.Exploit_gen.http_exploit rng
        ~shellcode:(Exploits.Shellcodes.find "classic").Exploits.Shellcodes.code;
      Exploits.Code_red.request ();
      Exploits.Iis_asp.request ();
    |]
  in
  let packets = 2000 in
  let p = Pipeline.create (Config.default |> Config.with_classification false) in
  (* warm the verdict cache: the outbreak steady state is all hits *)
  Array.iter (fun v -> ignore (Pipeline.analyze_payload p v)) variants;
  let alerts = ref 0 in
  let w =
    words_per ~n:packets (fun () ->
        for i = 0 to packets - 1 do
          alerts :=
            !alerts
            + List.length
                (Pipeline.analyze_payload p variants.(i mod Array.length variants))
        done)
  in
  Alcotest.(check int) "every replayed packet alerts" packets !alerts;
  (* pre-change (copying analyze path): 109.5 *)
  check_below "outbreak replay" 109.5 w

let test_alloc_process () =
  let rng = Rng.create 0x0B0B0B0BL in
  let n = 4000 in
  let pkts = Workload.Benign_gen.packets rng ~n ~t0:0.0 ~clients ~servers in
  let p = Pipeline.create Config.default in
  let w = words_per ~n (fun () -> ignore (Pipeline.process_packets p pkts)) in
  (* pre-change (copying packet path): 89.7 *)
  check_below "benign full process" 89.7 w

(* ------------------------------------------------------------------ *)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_view_equals_copy;
      prop_extract_offset_invariant;
      prop_ac_slice_equals_string;
      prop_search_slice_equals_naive;
      prop_parse_view_equals_copy;
      prop_faulted_decode_view_equals_copy;
    ]

let () =
  Alcotest.run "slice"
    [
      ( "unit",
        [
          Alcotest.test_case "basic ops" `Quick test_basic_ops;
          Alcotest.test_case "word accessors" `Quick test_word_accessors;
          Alcotest.test_case "bounds" `Quick test_bounds;
        ] );
      ("equivalence", properties);
      ( "allocation",
        [
          Alcotest.test_case "decode words/packet" `Quick test_alloc_decode;
          Alcotest.test_case "replay words/packet" `Quick test_alloc_replay;
          Alcotest.test_case "process words/packet" `Quick test_alloc_process;
        ] );
    ]
