(* Tests for the detector-artifact linter: the abstract domain's lattice
   laws, each seeded defect class, subsumption on the shipped library,
   rule lint, config lint, and the qcheck guarantee that no template —
   however malformed — makes the linter raise. *)

open Sanids_semantic
open Sanids_baseline
open Sanids_staticlint
module Config = Sanids_nids.Config

let codes fs = List.map (fun (f : Finding.t) -> f.Finding.code) fs

let has_code c fs = List.mem c (codes fs)

let check_has name c fs =
  Alcotest.(check bool) (name ^ " flags " ^ c) true (has_code c fs)

(* ------------------------------------------------------------------ *)
(* the abstract domain *)

let test_dom_laws () =
  let open Dom in
  let s1 = singleton 5l and s2 = singleton 7l in
  let nz = exclude 0l in
  Alcotest.(check bool) "bottom empty" true (is_empty none);
  Alcotest.(check bool) "top not empty" false (is_empty any);
  Alcotest.(check bool) "meet with top is identity" true
    (subset (meet s1 any) s1 && subset s1 (meet s1 any));
  Alcotest.(check bool) "disjoint singletons" true (disjoint s1 s2);
  Alcotest.(check bool) "5 avoids not-0" true (subset s1 nz);
  Alcotest.(check bool) "0 meets not-0 is bottom" true
    (is_empty (meet (singleton 0l) nz));
  Alcotest.(check bool) "of_list subset" true
    (subset s1 (of_list [ 5l; 7l ]));
  Alcotest.(check bool) "cofinite never inside finite" false
    (subset nz (of_list [ 1l; 2l ]));
  Alcotest.(check bool) "two cofinite sets intersect" false
    (disjoint nz (exclude 1l));
  Alcotest.(check (option int32)) "singleton identified" (Some 5l)
    (is_singleton (meet s1 any));
  (* disjoint is exact in every representation pair (the co-finite /
     co-finite true case needs exclusion sets covering all 2^32 values,
     which no guard conjunction of tractable size builds — untestable
     here by construction, and that is the point: top is never disjoint
     from anything but bottom) *)
  Alcotest.(check bool) "finite/finite overlapping" false
    (disjoint (of_list [ 5l; 9l ]) (of_list [ 9l; 11l ]));
  Alcotest.(check bool) "finite inside exclusions" true
    (disjoint (of_list [ 0l; 1l ]) (meet (exclude 0l) (exclude 1l)));
  Alcotest.(check bool) "finite escaping exclusions" false
    (disjoint (of_list [ 0l; 2l ]) (meet (exclude 0l) (exclude 1l)));
  Alcotest.(check bool) "top vs finite" false (disjoint any s1);
  Alcotest.(check bool) "bottom vs top" true (disjoint none any)

(* ------------------------------------------------------------------ *)
(* seeded defect classes: every selftest specimen announces its expected
   code as a description prefix "SLnnn:"; the linter must flag exactly
   what each specimen seeds *)

let test_seeded_defects () =
  let all = Selftest.findings () in
  List.iter
    (fun (t : Template.t) ->
      let expected = String.sub t.Template.description 0 5 in
      check_has t.Template.name expected all)
    Selftest.templates;
  List.iter
    (fun c -> check_has "selftest rules" c all)
    [ "SL100"; "SL102"; "SL103"; "SL104"; "SL105" ];
  Alcotest.(check bool) "selftest fails lint" true
    (Finding.failed ~strict:false all)

(* ------------------------------------------------------------------ *)
(* the shipped template library lints clean (the @lint golden) *)

let test_shipped_templates_clean () =
  let fs = Lint.templates Template_lib.default_set in
  let errors, warns, _ = Finding.counts fs in
  Alcotest.(check int) "no errors" 0 errors;
  Alcotest.(check int) "no warnings" 0 warns;
  (* the known deliberate hierarchy, as stable info findings *)
  Alcotest.(check (list string)) "hierarchy infos"
    [ "SL011"; "SL011"; "SL009"; "SL009" ] (codes fs)

let test_shipped_rules_clean () =
  let fs = Lint.rules_text Rule.default_ruleset in
  Alcotest.(check (list string)) "no findings" [] (codes fs)

(* ------------------------------------------------------------------ *)
(* subsumption on the shipped library *)

let shell_spawn_generic =
  List.nth Template_lib.default_set 6 (* shell-spawn, bare execve *)

let port_bind = List.nth Template_lib.default_set 7

let test_subsume_shipped () =
  Alcotest.(check bool) "port-bind under shell-spawn" true
    (Subsume.subsumes port_bind shell_spawn_generic);
  Alcotest.(check bool) "not the other way" false
    (Subsume.subsumes shell_spawn_generic port_bind);
  Alcotest.(check bool) "self-subsumption" true
    (Subsume.subsumes port_bind port_bind)

let test_subsume_gap_and_quant () =
  let open Template in
  let two_step ~max_gap q =
    make ~name:"g" ~description:"" ~max_gap
      [ q (Stack_const (Exact 1l)); q (Stack_const (Exact 2l)) ]
  in
  let tight = two_step ~max_gap:8 (fun p -> Once p) in
  let loose = two_step ~max_gap:32 (fun p -> Once p) in
  (* a looser gap on the subsumer is fine; a tighter one is not *)
  Alcotest.(check bool) "tight under loose" true (Subsume.subsumes tight loose);
  Alcotest.(check bool) "loose not under tight" false
    (Subsume.subsumes loose tight);
  let many = two_step ~max_gap:32 (fun p -> Many p) in
  (* Many occurrences on the matched side are junk for a Once reading *)
  Alcotest.(check bool) "Many not under Once" false
    (Subsume.subsumes many loose);
  Alcotest.(check bool) "Many under Many" true (Subsume.subsumes many many);
  Alcotest.(check bool) "Once under Many" true (Subsume.subsumes tight many)

(* ------------------------------------------------------------------ *)
(* config lint *)

let test_config_lint () =
  let fs = Config.lint Config.default in
  Alcotest.(check (list string)) "default config clean" [] (codes fs);
  let bad = Config.default |> Config.with_degrade true in
  check_has "degrade alone" "SL204" (Config.lint bad);
  (match Config.validate bad with
  | Error m ->
      Alcotest.(check bool) "validate message preserved" true
        (m = "degrade requires an analysis budget or a breaker (nothing can \
              trigger degradation otherwise)")
  | Ok _ -> Alcotest.fail "degrade-alone accepted");
  let tiny = Config.default |> Config.with_verdict_cache 10 in
  check_has "tiny cache" "SL205" (Config.lint tiny);
  (match Config.validate tiny with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "warning rejected the config: %s" m);
  let silent =
    Config.default |> Config.with_budget (Some Sanids_util.Budget.default_limits)
  in
  check_has "budget without degrade" "SL206" (Config.lint silent);
  let negative = Config.default |> Config.with_scan_threshold 0 in
  check_has "bad threshold" "SL201" (Config.lint negative);
  match Config.validate negative with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad threshold accepted"

(* ------------------------------------------------------------------ *)
(* property: the linter never raises, on any template *)

let gen_template =
  let open QCheck2.Gen in
  let var = oneofl [ "a"; "b"; "c"; "k" ] in
  let pval =
    oneof
      [
        return Template.Any;
        map (fun v -> Template.Exact (Int32.of_int v)) (int_bound 64);
        map (fun v -> Template.Bind v) var;
        map (fun v -> Template.Same v) var;
      ]
  in
  let width = oneofl [ Template.W8; Template.W32; Template.Wany ] in
  let ops = return [ Sanids_ir.Sem.Ra Sanids_x86.Insn.Xor ] in
  let pstep =
    oneof
      [
        map3
          (fun dst ptr width -> Template.Load { dst; ptr; width })
          var var width;
        map3
          (fun ptr key width ->
            Template.Mem_transform
              { ops = [ Sanids_ir.Sem.Ra Sanids_x86.Insn.Xor ]; ptr; key; width })
          var pval width;
        (let* ops = ops in
         map (fun reg -> Template.Reg_transform { ops; reg }) var);
        map3
          (fun src ptr width -> Template.Store { src; ptr; width })
          var var width;
        map (fun ptr -> Template.Ptr_advance { ptr }) var;
        return Template.Back_edge;
        map3
          (fun vector al bl -> Template.Syscall { vector; al; bl })
          (oneofl [ 0x80; 0x21 ])
          pval pval;
        map (fun v -> Template.Stack_const v) pval;
        map (fun v -> Template.Code_const (Int32.of_int v)) (int_bound 1024);
      ]
  in
  let quant =
    let* p = pstep in
    oneofl [ Template.Once p; Template.Many p ]
  in
  let guard =
    oneof
      [
        map (fun v -> Template.Nonzero v) var;
        map2 (fun v c -> Template.Equals (v, Int32.of_int c)) var (int_bound 8);
        map2
          (fun v cs -> Template.One_of (v, List.map Int32.of_int cs))
          var
          (list_size (int_bound 3) (int_bound 8));
        map2 (fun a b -> Template.Differ (a, b)) var var;
      ]
  in
  let* steps = list_size (int_range 1 6) quant in
  let* guards = list_size (int_bound 4) guard in
  let* max_gap = int_range 0 48 in
  let* data = list_size (int_bound 2) (string_size (int_bound 6)) in
  return (Template.make ~name:"wild" ~description:"generated" ~guards ~max_gap ~data steps)

let test_lint_never_raises =
  QCheck2.Test.make ~name:"linter total on wild templates" ~count:300
    QCheck2.(Gen.pair gen_template gen_template)
    (fun (a, b) ->
      let fa = Template_lint.check a in
      (* deterministic *)
      assert (fa = Template_lint.check a);
      let (_ : bool) = Subsume.subsumes a b in
      let (_ : Finding.t list) = Lint.templates [ a; b ] in
      true)

let test_rule_lint_never_raises =
  QCheck2.Test.make ~name:"rule lint total on noise" ~count:200
    QCheck2.Gen.(string_size ~gen:(map Char.chr (int_range 0x20 0x7e)) (int_bound 200))
    (fun s ->
      let (_ : Finding.t list) = Rule_lint.lint_text s in
      true)

(* ------------------------------------------------------------------ *)
(* rendering stability *)

let test_render_stable () =
  let f =
    Finding.v ~code:"SL001" ~severity:Finding.Error ~subject:"template:x"
      ~loc:"guard 1" "a \"quoted\" message"
  in
  Alcotest.(check string) "text line"
    "SL001 error template:x (guard 1): a \"quoted\" message" (Finding.to_line f);
  Alcotest.(check string) "json line"
    "{\"code\":\"SL001\",\"severity\":\"error\",\"subject\":\"template:x\",\
     \"loc\":\"guard 1\",\"message\":\"a \\\"quoted\\\" message\"}"
    (Finding.to_json f);
  Alcotest.(check string) "summary" "1 errors, 0 warnings, 0 infos"
    (Finding.summary [ f ]);
  Alcotest.(check int) "strict exit" 65 (Lint.exit_code ~strict:true [ f ]);
  Alcotest.(check int) "info-only passes" 0
    (Lint.exit_code ~strict:true
       [ Finding.v ~code:"SL302" ~severity:Finding.Info ~subject:"t" "d" ])

let () =
  Alcotest.run "staticlint"
    [
      ("dom", [ Alcotest.test_case "lattice laws" `Quick test_dom_laws ]);
      ( "template-lint",
        [
          Alcotest.test_case "seeded defects all flagged" `Quick
            test_seeded_defects;
          Alcotest.test_case "shipped templates clean" `Quick
            test_shipped_templates_clean;
        ] );
      ( "subsume",
        [
          Alcotest.test_case "shipped hierarchy" `Quick test_subsume_shipped;
          Alcotest.test_case "gap and quantifier rules" `Quick
            test_subsume_gap_and_quant;
        ] );
      ( "rule-lint",
        [
          Alcotest.test_case "shipped ruleset clean" `Quick
            test_shipped_rules_clean;
        ] );
      ("config-lint", [ Alcotest.test_case "codes" `Quick test_config_lint ]);
      ("render", [ Alcotest.test_case "stable" `Quick test_render_stable ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ test_lint_never_raises; test_rule_lint_never_raises ] );
    ]
