(* End-to-end tests of the NIDS pipeline: classification gating, honeypot
   and scan paths, extraction-driven analysis, alert content, statistics,
   and the workload generators. *)

open Sanids_net
open Sanids_nids
open Sanids_exploits

let ip = Ipaddr.of_string

let honeypot_addr = ip "10.9.9.9"
let attacker = ip "172.16.5.5"
let victim = ip "10.0.0.80"
let clients = Ipaddr.prefix_of_string "10.1.0.0/16"
let servers = Ipaddr.prefix_of_string "10.2.0.0/16"
let unused_space = Ipaddr.prefix_of_string "10.200.0.0/16"

let base_config =
  Config.default
  |> Config.with_honeypots [ honeypot_addr ]
  |> Config.with_unused [ unused_space ]

let exploit_packet ?(ts = 1.0) ~src ~dst () =
  let rng = Rng.create 42L in
  Exploit_gen.packet rng ~ts ~src ~dst
    ~shellcode:(Shellcodes.find "classic").Shellcodes.code

let test_honeypot_path () =
  let nids = Pipeline.create base_config in
  (* attacker probes the honeypot, then exploits a real host *)
  let probe =
    Packet.build_tcp ~ts:0.5 ~src:attacker ~dst:honeypot_addr ~src_port:4000
      ~dst_port:80 "GET / HTTP/1.0\r\n\r\n"
  in
  Alcotest.(check int) "probe itself: suspicious but benign content" 0
    (List.length (Pipeline.process_packet nids probe));
  let alerts = Pipeline.process_packet nids (exploit_packet ~src:attacker ~dst:victim ()) in
  Alcotest.(check bool) "exploit from marked source alerts" true (alerts <> []);
  let a = List.hd alerts in
  Alcotest.(check string) "template" "shell-spawn" a.Alert.template;
  Alcotest.(check bool) "reason honeypot" true
    (a.Alert.reason = Sanids_classify.Classifier.Honeypot_sender)

let test_unflagged_source_not_analyzed () =
  let nids = Pipeline.create base_config in
  (* the same exploit from a source that never tripped the classifier *)
  let alerts = Pipeline.process_packet nids (exploit_packet ~src:(ip "172.16.0.1") ~dst:victim ()) in
  Alcotest.(check int) "no classification, no analysis" 0 (List.length alerts)

let test_scan_detector_path () =
  let nids = Pipeline.create base_config in
  let rng = Rng.create 43L in
  let src = ip "198.51.100.7" in
  (* five scans into the unused space trip the threshold *)
  for s = 1 to 5 do
    let p =
      Sanids_workload.Worm_gen.scan_packet rng ~ts:(float_of_int s) ~src
        ~unused:unused_space
    in
    ignore (Pipeline.process_packet nids p)
  done;
  let alerts = Pipeline.process_packet nids (exploit_packet ~ts:6.0 ~src ~dst:victim ()) in
  Alcotest.(check bool) "scanner's exploit detected" true (alerts <> []);
  Alcotest.(check bool) "reason scanner" true
    ((List.hd alerts).Alert.reason = Sanids_classify.Classifier.Scanner)

let test_below_threshold_not_flagged () =
  let nids = Pipeline.create base_config in
  let rng = Rng.create 44L in
  let src = ip "198.51.100.8" in
  for s = 1 to 3 do
    ignore
      (Pipeline.process_packet nids
         (Sanids_workload.Worm_gen.scan_packet rng ~ts:(float_of_int s) ~src
            ~unused:unused_space))
  done;
  Alcotest.(check int) "three scans stay under threshold 5" 0
    (List.length (Pipeline.process_packet nids (exploit_packet ~ts:4.0 ~src ~dst:victim ())))

let test_classification_disabled_mode () =
  let nids = Pipeline.create (Config.with_classification false base_config) in
  let alerts =
    Pipeline.process_packet nids (exploit_packet ~src:(ip "172.16.0.2") ~dst:victim ())
  in
  Alcotest.(check bool) "analyzed without classification" true (alerts <> []);
  Alcotest.(check bool) "reason disabled" true
    ((List.hd alerts).Alert.reason
    = Sanids_classify.Classifier.Classification_disabled)

let test_code_red_detected_end_to_end () =
  let nids = Pipeline.create (Config.with_classification false base_config) in
  let p = Code_red.packet ~ts:0.0 ~src:attacker ~dst:victim () in
  let alerts = Pipeline.process_packet nids p in
  Alcotest.(check bool) "code red alert" true
    (List.exists (fun a -> a.Alert.template = "code-red-ii") alerts)

let test_benign_no_alerts () =
  let nids = Pipeline.create (Config.with_classification false base_config) in
  let rng = Rng.create 45L in
  let pkts =
    Sanids_workload.Benign_gen.packets rng ~n:300 ~t0:0.0 ~clients ~servers
  in
  let alerts = Pipeline.process_packets nids pkts in
  Alcotest.(check int) "no false positives" 0 (List.length alerts)

let test_pcap_end_to_end () =
  let nids = Pipeline.create (Config.with_classification false base_config) in
  let pkts =
    [
      Packet.build_tcp ~ts:0.1 ~src:attacker ~dst:victim ~src_port:1 ~dst_port:80
        "GET /ok HTTP/1.0\r\n\r\n";
      Code_red.packet ~ts:0.2 ~src:attacker ~dst:victim ();
    ]
  in
  let file =
    Sanids_pcap.Pcap.decode_exn (Sanids_pcap.Pcap.encode (Sanids_pcap.Pcap.of_packets pkts))
  in
  let alerts = Pipeline.process_pcap nids file in
  Alcotest.(check int) "one packet alerts" 1 (List.length alerts)

let test_stats_accounting () =
  let nids = Pipeline.create (Config.with_classification false base_config) in
  ignore (Pipeline.process_packet nids (exploit_packet ~src:attacker ~dst:victim ()));
  ignore
    (Pipeline.process_packet nids
       (Packet.build_tcp ~ts:0.3 ~src:attacker ~dst:victim ~src_port:1 ~dst_port:80
          "GET / HTTP/1.0\r\n\r\n"));
  let s = Pipeline.stats nids in
  Alcotest.(check int) "packets" 2 s.Stats.packets;
  Alcotest.(check int) "suspicious (classification off)" 2 s.Stats.classified_suspicious;
  Alcotest.(check bool) "frames analyzed" true (s.Stats.frames >= 1);
  Alcotest.(check bool) "alerts counted" true (s.Stats.alerts >= 1);
  Alcotest.(check bool) "time accrued" true (s.Stats.analysis_seconds >= 0.0)

let test_unpruned_mode_still_detects () =
  (* extraction disabled: whole payloads go to the disassembler *)
  let cfg =
    base_config |> Config.with_classification false |> Config.with_extraction false
  in
  let nids = Pipeline.create cfg in
  let alerts = Pipeline.process_packet nids (exploit_packet ~src:attacker ~dst:victim ()) in
  Alcotest.(check bool) "detected without extraction" true (alerts <> [])

let contains_sub hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
  m = 0 || go 0

let test_alert_rendering () =
  let nids = Pipeline.create (Config.with_classification false base_config) in
  match Pipeline.process_packet nids (exploit_packet ~src:attacker ~dst:victim ()) with
  | a :: _ ->
      let line = Alert.to_line a in
      Alcotest.(check bool) "mentions template" true
        (String.length line > 0 && contains_sub line a.Alert.template)
  | [] -> Alcotest.fail "expected an alert"

(* ------------------------------------------------------------------ *)
(* workload sanity *)

let test_worm_trace_ground_truth () =
  let rng = Rng.create 46L in
  let pkts, truth =
    Sanids_workload.Worm_gen.code_red_trace rng ~benign:200 ~instances:3
      ~scans_per_instance:6 ~clients ~servers ~unused:unused_space ~duration:60.0
  in
  Alcotest.(check int) "total" (List.length pkts) truth.Sanids_workload.Worm_gen.total_packets;
  Alcotest.(check int) "instances" 3 truth.Sanids_workload.Worm_gen.crii_instances;
  Alcotest.(check int) "scans" 18 truth.Sanids_workload.Worm_gen.scan_packets;
  (* timestamps are sorted *)
  let rec sorted = function
    | a :: (b :: _ as tl) -> a.Packet.ts <= b.Packet.ts && sorted tl
    | _ -> true
  in
  Alcotest.(check bool) "time sorted" true (sorted pkts)

let test_worm_trace_full_detection () =
  let rng = Rng.create 47L in
  let pkts, truth =
    Sanids_workload.Worm_gen.code_red_trace rng ~benign:500 ~instances:4
      ~scans_per_instance:6 ~clients ~servers ~unused:unused_space ~duration:60.0
  in
  let nids = Pipeline.create base_config in
  let alerts = Pipeline.process_packets nids pkts in
  let crii = List.filter (fun a -> a.Alert.template = "code-red-ii") alerts in
  Alcotest.(check int) "every instance detected via classifier"
    truth.Sanids_workload.Worm_gen.crii_instances (List.length crii)

let test_slammer_outbreak_detected () =
  let rng = Rng.create 50L in
  let pkts, truth =
    Sanids_workload.Worm_gen.slammer_trace rng ~benign:500 ~infected:3
      ~sprays_per_host:6 ~clients ~servers ~unused:unused_space ~duration:60.0
  in
  let nids = Pipeline.create base_config in
  let alerts = Pipeline.process_packets nids pkts in
  let slam = List.filter (fun a -> a.Alert.template = "slammer") alerts in
  (* the sprays themselves flag the source, so at least the live-server
     delivery of every infected host is analyzed and matched *)
  Alcotest.(check bool)
    (Printf.sprintf "every infected host caught (%d >= %d)" (List.length slam)
       truth.Sanids_workload.Worm_gen.crii_instances)
    true
    (List.length slam >= truth.Sanids_workload.Worm_gen.crii_instances)

let test_benign_gen_mix () =
  let rng = Rng.create 48L in
  let pkts = Sanids_workload.Benign_gen.packets rng ~n:500 ~t0:0.0 ~clients ~servers in
  Alcotest.(check int) "count" 500 (List.length pkts);
  let tcp = List.length (List.filter Packet.is_tcp pkts) in
  Alcotest.(check bool) "mostly tcp" true (tcp > 350);
  (* sources come from the client prefix *)
  List.iter
    (fun p ->
      if not (Ipaddr.mem (Packet.src p) clients) then
        Alcotest.fail "client address outside prefix")
    pkts

let test_benign_seq_lazy () =
  let rng = Rng.create 49L in
  let s = Sanids_workload.Benign_gen.seq rng ~n:100000 ~t0:0.0 ~clients ~servers in
  (* consuming only a prefix must be cheap *)
  let first_ten = List.of_seq (Seq.take 10 s) in
  Alcotest.(check int) "prefix" 10 (List.length first_ten)

let () =
  Alcotest.run "nids"
    [
      ( "pipeline",
        [
          Alcotest.test_case "honeypot path" `Quick test_honeypot_path;
          Alcotest.test_case "unflagged not analyzed" `Quick test_unflagged_source_not_analyzed;
          Alcotest.test_case "scan detector path" `Quick test_scan_detector_path;
          Alcotest.test_case "below threshold" `Quick test_below_threshold_not_flagged;
          Alcotest.test_case "classification disabled" `Quick test_classification_disabled_mode;
          Alcotest.test_case "code red end to end" `Quick test_code_red_detected_end_to_end;
          Alcotest.test_case "benign quiet" `Quick test_benign_no_alerts;
          Alcotest.test_case "pcap end to end" `Quick test_pcap_end_to_end;
          Alcotest.test_case "stats" `Quick test_stats_accounting;
          Alcotest.test_case "unpruned mode" `Quick test_unpruned_mode_still_detects;
          Alcotest.test_case "alert rendering" `Quick test_alert_rendering;
        ] );
      ( "workload",
        [
          Alcotest.test_case "worm ground truth" `Quick test_worm_trace_ground_truth;
          Alcotest.test_case "worm full detection" `Quick test_worm_trace_full_detection;
          Alcotest.test_case "slammer outbreak" `Quick test_slammer_outbreak_detected;
          Alcotest.test_case "benign mix" `Quick test_benign_gen_mix;
          Alcotest.test_case "lazy seq" `Quick test_benign_seq_lazy;
        ] );
    ]
