(* Tests for the analysis fast path: the LRU, the decode-memo instruction
   cache, memoized-vs-direct trace building, memoized-vs-direct scanning,
   the Aho–Corasick data prefilter, and the pipeline verdict cache — all
   under the exactness contract: caching must never change a verdict. *)

open Sanids_x86
open Sanids_ir
open Sanids_semantic
open Sanids_net
open Sanids_nids
open Sanids_exploits
module Obs = Sanids_obs

(* ------------------------------------------------------------------ *)
(* Lru *)

let test_lru_eviction_order () =
  let l = Lru.create 2 in
  Lru.add l "a" 1;
  Lru.add l "b" 2;
  Alcotest.(check (option int)) "a present" (Some 1) (Lru.find l "a");
  (* "a" was just promoted, so adding "c" evicts "b" *)
  Lru.add l "c" 3;
  Alcotest.(check bool) "b evicted" false (Lru.mem l "b");
  Alcotest.(check bool) "a survives" true (Lru.mem l "a");
  Alcotest.(check bool) "c present" true (Lru.mem l "c");
  Alcotest.(check int) "one eviction" 1 (Lru.evictions l);
  Alcotest.(check int) "at capacity" 2 (Lru.length l)

let test_lru_update_no_eviction () =
  let l = Lru.create 2 in
  Lru.add l "a" 1;
  Lru.add l "b" 2;
  Lru.add l "a" 10;
  Alcotest.(check (option int)) "updated" (Some 10) (Lru.find l "a");
  Alcotest.(check int) "no eviction on update" 0 (Lru.evictions l);
  Alcotest.(check int) "still two" 2 (Lru.length l)

let test_lru_single_slot () =
  let l = Lru.create 1 in
  Lru.add l 1 "x";
  Lru.add l 2 "y";
  Alcotest.(check bool) "1 evicted" false (Lru.mem l 1);
  Alcotest.(check (option string)) "2 present" (Some "y") (Lru.find l 2);
  Lru.clear l;
  Alcotest.(check int) "cleared" 0 (Lru.length l)

let test_lru_rejects_zero_capacity () =
  Alcotest.check_raises "cap 0" (Invalid_argument "Lru.create: capacity must be positive")
    (fun () -> ignore (Lru.create 0))

(* ------------------------------------------------------------------ *)
(* Icache: memoized decode agrees with direct decode *)

let test_icache_agrees_with_decode () =
  let rng = Rng.create 0xFA57L in
  let code =
    (Sanids_polymorph.Admmutate.generate rng
       ~payload:(Shellcodes.find "classic").Shellcodes.code)
      .Sanids_polymorph.Admmutate.code
  in
  let c = Icache.create code in
  for off = 0 to String.length code - 1 do
    (* twice: second pass must hit the memo and agree *)
    for _pass = 1 to 2 do
      match (Icache.decode c off, Decode.at code off) with
      | None, None -> ()
      | Some e, Some d ->
          if e.Icache.insn <> d.Decode.insn || e.Icache.len <> d.Decode.len then
            Alcotest.failf "icache disagrees with Decode.at at 0x%x" off;
          if Array.to_list e.Icache.sems <> Sem.lift d.Decode.insn then
            Alcotest.failf "icache sems disagree at 0x%x" off
      | Some _, None | None, Some _ ->
          Alcotest.failf "icache presence disagrees at 0x%x" off
    done
  done;
  Alcotest.(check int) "every offset decoded once" (String.length code)
    (Icache.misses c);
  Alcotest.(check int) "second pass all hits" (String.length code)
    (Icache.hits c)

let test_icache_out_of_range () =
  let c = Icache.create "\x90" in
  Alcotest.(check bool) "negative" true (Icache.decode c (-1) = None);
  Alcotest.(check bool) "past end" true (Icache.decode c 5 = None);
  Alcotest.(check int) "range checks are not lookups" 0
    (Icache.hits c + Icache.misses c)

(* ------------------------------------------------------------------ *)
(* Trace.build_cached ≡ Trace.build *)

let same_trace name (a : Trace.t) (b : Trace.t) =
  Alcotest.(check int) (name ^ ": length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i (s : Trace.step) ->
      let s' = b.(i) in
      if
        s.Trace.off <> s'.Trace.off
        || s.Trace.len <> s'.Trace.len
        || s.Trace.insn <> s'.Trace.insn
        || Array.to_list s.Trace.sems <> Array.to_list s'.Trace.sems
      then Alcotest.failf "%s: step %d differs" name i)
    a

let test_build_cached_equiv_structured () =
  let rng = Rng.create 0xFA58L in
  let code =
    (Sanids_polymorph.Admmutate.generate rng
       ~payload:(Shellcodes.find "classic").Shellcodes.code)
      .Sanids_polymorph.Admmutate.code
  in
  let cache = Icache.create code in
  List.iter
    (fun entry ->
      same_trace
        (Printf.sprintf "entry %d" entry)
        (Trace.build code ~entry)
        (Trace.build_cached cache ~entry))
    (Trace.entry_points code)

let prop_build_cached_equiv =
  QCheck2.Test.make ~name:"memoized Trace.build ≡ unmemoized on random regions"
    ~count:80
    QCheck2.Gen.(string_size (int_range 0 200))
    (fun code ->
      let cache = Icache.create code in
      let entries = if String.length code = 0 then [ 0 ] else
        List.init (min 8 (String.length code)) (fun i -> i)
      in
      List.for_all
        (fun entry ->
          let a = Trace.build code ~entry in
          let b = Trace.build_cached cache ~entry in
          Array.length a = Array.length b
          && Array.for_all2
               (fun (s : Trace.step) (s' : Trace.step) ->
                 s.Trace.off = s'.Trace.off
                 && s.Trace.len = s'.Trace.len
                 && s.Trace.insn = s'.Trace.insn
                 && Array.to_list s.Trace.sems = Array.to_list s'.Trace.sems)
               a b)
        entries)

(* ------------------------------------------------------------------ *)
(* Matcher.scan: memoized ≡ direct, and the decode memo actually wins *)

let i x = Asm.I x

let decoder_with_sled sled_len =
  String.make sled_len '\x90'
  ^ Asm.assemble
      [
        Asm.Label "decode";
        i (Insn.Arith (Insn.Xor, Insn.S8bit, Insn.Mem (Insn.mem_base Reg.EAX), Insn.Imm 0x95l));
        i (Insn.Inc (Insn.S32bit, Insn.Reg Reg.EAX));
        Asm.Loop_to "decode";
      ]

let test_scan_memoized_equiv_structured () =
  let inputs =
    let rng = Rng.create 0xFA59L in
    [
      decoder_with_sled 64;
      (Sanids_polymorph.Admmutate.generate rng
         ~payload:(Shellcodes.find "classic").Shellcodes.code)
        .Sanids_polymorph.Admmutate.code;
      Exploit_gen.http_exploit rng
        ~shellcode:(Shellcodes.find "classic").Shellcodes.code;
      Code_red.request ();
    ]
  in
  List.iter
    (fun code ->
      let templates = Template_lib.default_set in
      let memo = Matcher.scan ~templates code in
      let direct = Matcher.scan ~memoize:false ~templates code in
      Alcotest.(check bool) "same results" true (memo = direct))
    inputs;
  (* at least the sled-decoder input must actually match *)
  Alcotest.(check bool) "decoder input matches" true
    (Matcher.scan ~templates:Template_lib.default_set (List.hd inputs) <> [])

let prop_scan_memoized_equiv =
  QCheck2.Test.make ~name:"memoized scan ≡ unmemoized on random bytes" ~count:60
    QCheck2.Gen.(string_size (int_range 0 160))
    (fun code ->
      Matcher.scan ~templates:Template_lib.default_set code
      = Matcher.scan ~memoize:false ~templates:Template_lib.default_set code)

let test_decode_memo_wins_on_sled () =
  (* explicit entry enumeration, as the ablation harness uses: every
     candidate entry decodes through the same sled, so without the memo
     an n-byte sled costs ~entries × trace-length decodes *)
  let code = decoder_with_sled 96 in
  let reg = Obs.Registry.create () in
  let entries = Trace.entry_points code in
  let results =
    Matcher.scan ~entries ~metrics:reg ~templates:Template_lib.default_set code
  in
  let snap = Obs.Registry.snapshot reg in
  let hits = Obs.Snapshot.counter_value snap Matcher.decode_memo_hits in
  let misses = Obs.Snapshot.counter_value snap Matcher.decode_memo_misses in
  Alcotest.(check bool) "decoder found through sled" true (results <> []);
  Alcotest.(check bool) "memo hits dominate" true (hits > misses);
  (* with sharing, actual decodes are bounded by the region size *)
  Alcotest.(check bool) "misses bounded by region size" true
    (misses <= String.length code)

let test_scan_budget_exhaustion_counted () =
  (* every offset of a long all-NOP region as an explicit entry: each
     trace is ~1024 steps, so the 4n work budget drains long before the
     entry list does, and no template ever matches *)
  let code = String.make 4096 '\x90' in
  let reg = Obs.Registry.create () in
  let entries = List.init (String.length code) (fun i -> i) in
  ignore
    (Matcher.scan ~entries ~metrics:reg ~templates:Template_lib.xor_decrypt code);
  Alcotest.(check int) "budget exhaustion recorded" 1
    (Obs.Snapshot.counter_value
       (Obs.Registry.snapshot reg)
       Matcher.scan_budget_exhausted)

let test_data_prefilter () =
  let base = List.hd Template_lib.xor_decrypt in
  let gated = { base with Template.data = [ "MAIL FROM:" ] } in
  let code = decoder_with_sled 8 in
  Alcotest.(check bool) "data requirement unmet: no match" true
    (Matcher.scan ~templates:[ gated ] code = []);
  Alcotest.(check bool) "data requirement met: matches" true
    (Matcher.scan ~templates:[ gated ] (code ^ "MAIL FROM:") <> []);
  (* multi-template pass: one gated out, one through, in the same scan *)
  let rs = Matcher.scan ~templates:[ gated; base ] code in
  Alcotest.(check int) "ungated variant still matches" 1 (List.length rs)

(* ------------------------------------------------------------------ *)
(* Pipeline verdict cache: exactness on seeded workloads *)

let clients = Ipaddr.prefix_of_string "10.1.0.0/16"
let servers = Ipaddr.prefix_of_string "10.2.0.0/16"
let unused_space = Ipaddr.prefix_of_string "10.200.0.0/16"

let base_config = Config.default |> Config.with_unused [ unused_space ]

let alerts_with cfg pkts = Pipeline.process_packets (Pipeline.create cfg) pkts

let check_cache_equiv name pkts =
  let cached = Pipeline.create base_config in
  let uncached = Pipeline.create (Config.with_verdict_cache 0 base_config) in
  let a = Pipeline.process_packets cached pkts in
  let b = Pipeline.process_packets uncached pkts in
  Alcotest.(check int) (name ^ ": same alert count") (List.length b)
    (List.length a);
  Alcotest.(check bool) (name ^ ": identical alerts") true (a = b);
  Alcotest.(check int) (name ^ ": uncached pipeline never consults cache") 0
    ((Pipeline.stats uncached).Stats.verdict_cache_hits
    + (Pipeline.stats uncached).Stats.verdict_cache_misses);
  (cached, a)

let test_verdict_cache_equiv_outbreak () =
  let rng = Rng.create 0xCA11L in
  let pkts, truth =
    Sanids_workload.Worm_gen.code_red_trace rng ~benign:300 ~instances:5
      ~scans_per_instance:6 ~clients ~servers ~unused:unused_space
      ~duration:60.0
  in
  let cached, alerts = check_cache_equiv "code-red outbreak" pkts in
  Alcotest.(check int) "all instances alerted"
    truth.Sanids_workload.Worm_gen.crii_instances
    (List.length
       (List.filter (fun a -> a.Alert.template = "code-red-ii") alerts));
  (* outbreak deliveries repeat the same payload: the cache must hit *)
  Alcotest.(check bool) "cache hits on repeated payloads" true
    ((Pipeline.stats cached).Stats.verdict_cache_hits > 0)

let test_verdict_cache_equiv_slammer () =
  let rng = Rng.create 0xCA12L in
  let pkts, _ =
    Sanids_workload.Worm_gen.slammer_trace rng ~benign:300 ~infected:3
      ~sprays_per_host:6 ~clients ~servers ~unused:unused_space ~duration:60.0
  in
  ignore (check_cache_equiv "slammer outbreak" pkts)

let test_verdict_cache_equiv_benign () =
  let rng = Rng.create 0xCA13L in
  let pkts =
    Sanids_workload.Benign_gen.packets rng ~n:300 ~t0:0.0 ~clients ~servers
  in
  let cfg = Config.with_classification false base_config in
  let a = alerts_with cfg pkts in
  let b = alerts_with (Config.with_verdict_cache 0 cfg) pkts in
  Alcotest.(check int) "benign: both quiet" 0 (List.length a);
  Alcotest.(check bool) "benign: identical" true (a = b)

let test_verdict_cache_counters () =
  let nids = Pipeline.create (Config.with_classification false Config.default) in
  let payload = Code_red.request () in
  ignore (Pipeline.analyze_payload nids payload);
  ignore (Pipeline.analyze_payload nids payload);
  ignore (Pipeline.analyze_payload nids payload);
  let s = Pipeline.stats nids in
  Alcotest.(check int) "one miss" 1 s.Stats.verdict_cache_misses;
  Alcotest.(check int) "two hits" 2 s.Stats.verdict_cache_hits;
  Alcotest.(check bool) "decode memo counted" true
    (s.Stats.decode_memo_hits + s.Stats.decode_memo_misses > 0);
  let rendered = Format.asprintf "%a" Stats.pp s in
  Alcotest.(check bool) "pp mentions vcache" true
    (let rec has i =
       i + 7 <= String.length rendered
       && (String.sub rendered i 7 = "vcache=" || has (i + 1))
     in
     has 0)

let test_verdict_cache_eviction_counted () =
  let cfg =
    Config.default |> Config.with_classification false
    |> Config.with_verdict_cache 1
  in
  let nids = Pipeline.create cfg in
  let rng = Rng.create 0xCA14L in
  let p1 = Code_red.request () in
  let p2 =
    Exploit_gen.http_exploit rng
      ~shellcode:(Shellcodes.find "classic").Shellcodes.code
  in
  ignore (Pipeline.analyze_payload nids p1);
  ignore (Pipeline.analyze_payload nids p2);
  ignore (Pipeline.analyze_payload nids p1);
  let s = Pipeline.stats nids in
  Alcotest.(check bool) "evictions counted" true
    (s.Stats.verdict_cache_evictions >= 1);
  Alcotest.(check int) "no spurious hits with cap 1" 0 s.Stats.verdict_cache_hits

let properties =
  List.map QCheck_alcotest.to_alcotest
    [ prop_build_cached_equiv; prop_scan_memoized_equiv ]

let () =
  Alcotest.run "fastpath"
    [
      ( "lru",
        [
          Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "update" `Quick test_lru_update_no_eviction;
          Alcotest.test_case "single slot" `Quick test_lru_single_slot;
          Alcotest.test_case "zero capacity" `Quick test_lru_rejects_zero_capacity;
        ] );
      ( "icache",
        [
          Alcotest.test_case "agrees with decode" `Quick test_icache_agrees_with_decode;
          Alcotest.test_case "out of range" `Quick test_icache_out_of_range;
        ] );
      ( "trace-memo",
        [
          Alcotest.test_case "structured equivalence" `Quick
            test_build_cached_equiv_structured;
        ] );
      ( "scan",
        [
          Alcotest.test_case "memoized equivalence" `Quick
            test_scan_memoized_equiv_structured;
          Alcotest.test_case "decode memo wins on sled" `Quick
            test_decode_memo_wins_on_sled;
          Alcotest.test_case "budget exhaustion counted" `Quick
            test_scan_budget_exhaustion_counted;
          Alcotest.test_case "data prefilter" `Quick test_data_prefilter;
        ] );
      ( "verdict-cache",
        [
          Alcotest.test_case "outbreak equivalence" `Quick
            test_verdict_cache_equiv_outbreak;
          Alcotest.test_case "slammer equivalence" `Quick
            test_verdict_cache_equiv_slammer;
          Alcotest.test_case "benign equivalence" `Quick
            test_verdict_cache_equiv_benign;
          Alcotest.test_case "counters" `Quick test_verdict_cache_counters;
          Alcotest.test_case "eviction counted" `Quick
            test_verdict_cache_eviction_counted;
        ] );
      ("properties", properties);
    ]
