(* Unit tests for the observability core (sanids.obs): histogram
   bucketing, the registry, snapshot algebra, the exporters (including a
   small Prometheus text-format lint), and timer spans. *)

module Obs = Sanids_obs
module H = Obs.Histogram
module R = Obs.Registry
module S = Obs.Snapshot

(* ------------------------------------------------------------------ *)
(* Histogram *)

let test_hist_basics () =
  let h = H.create () in
  List.iter (H.observe h) [ 1e-6; 2e-6; 1e-3; 0.5 ];
  let s = H.snap h in
  Alcotest.(check int) "count" 4 (H.count s);
  Alcotest.(check bool) "sum" true (abs_float (H.sum s -. 0.501003) < 1e-9);
  Alcotest.(check bool) "mean" true (abs_float (H.mean s -. (H.sum s /. 4.0)) < 1e-12);
  Alcotest.(check int) "empty count" 0 (H.count H.empty_snap);
  Alcotest.(check (float 0.0)) "empty quantile" 0.0 (H.quantile H.empty_snap 0.5)

let test_hist_bucketing () =
  (* each observation lands in the bucket whose bounds contain it *)
  List.iter
    (fun v ->
      let i = H.bucket_of_seconds v in
      Alcotest.(check bool)
        (Printf.sprintf "%g below upper bound" v)
        true
        (v <= H.bucket_upper i);
      if i > 0 then
        Alcotest.(check bool)
          (Printf.sprintf "%g above lower bound" v)
          true
          (v > H.bucket_upper (i - 1)))
    [ 1e-9; 3e-9; 1e-6; 4.2e-5; 1e-3; 0.9; 12.0 ]

let test_hist_quantile_upper_bound () =
  let h = H.create () in
  (* 100 observations at ~1ms: every quantile's bucket bound must cover
     1ms and over-estimate by at most one octave *)
  for _ = 1 to 100 do
    H.observe h 1e-3
  done;
  let s = H.snap h in
  let q = H.quantile s 0.5 in
  Alcotest.(check bool) "covers the observation" true (q >= 1e-3);
  Alcotest.(check bool) "within one octave" true (q <= 4e-3)

let test_hist_clamps_garbage () =
  let h = H.create () in
  H.observe h (-1.0);
  H.observe h Float.nan;
  let s = H.snap h in
  Alcotest.(check int) "both counted" 2 (H.count s);
  Alcotest.(check (float 0.0)) "clamped to zero sum" 0.0 (H.sum s)

let test_hist_merge () =
  let a = H.create () and b = H.create () in
  H.observe a 1e-6;
  H.observe a 1e-3;
  H.observe b 1e-3;
  let m = H.merge (H.snap a) (H.snap b) in
  Alcotest.(check int) "merged count" 3 (H.count m);
  Alcotest.(check bool) "merged sum" true (abs_float (H.sum m -. 0.002001) < 1e-9);
  let i = H.bucket_of_seconds 1e-3 in
  Alcotest.(check int) "bucket-wise addition" 2 m.H.counts.(i)

(* ------------------------------------------------------------------ *)
(* Registry *)

let test_registry_counters () =
  let r = R.create () in
  let c = R.counter r ~help:"test counter" "sanids_test_total" in
  R.incr c;
  R.add c 4;
  Alcotest.(check int) "value" 5 (R.counter_value c);
  (* registration is idempotent: same handle by name *)
  R.incr (R.counter r "sanids_test_total");
  Alcotest.(check int) "same underlying metric" 6 (R.counter_value c);
  Alcotest.(check (option string)) "help kept" (Some "test counter")
    (R.help r "sanids_test_total")

let test_registry_gauges () =
  let r = R.create () in
  let g = R.gauge r "sanids_test_entries" in
  R.set_gauge g 41.0;
  R.add_gauge g 1.0;
  Alcotest.(check (float 0.0)) "gauge value" 42.0 (R.gauge_value g)

let test_registry_validation () =
  let r = R.create () in
  (match R.counter r "0bad name" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "malformed name must raise");
  let _ = R.counter r "sanids_dual" in
  match R.gauge r "sanids_dual" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind conflict must raise"

let test_registry_snapshot_reset () =
  let r = R.create () in
  R.add (R.counter r "sanids_a_total") 3;
  R.set_gauge (R.gauge r "sanids_g") 2.5;
  H.observe (R.histogram r "sanids_h_seconds") 1e-3;
  let s = R.snapshot r in
  Alcotest.(check int) "counter in snapshot" 3 (S.counter_value s "sanids_a_total");
  Alcotest.(check (float 0.0)) "gauge in snapshot" 2.5 (S.gauge_value s "sanids_g");
  Alcotest.(check int) "histogram in snapshot" 1 (H.count (S.histogram s "sanids_h_seconds"));
  R.reset r;
  let s' = R.snapshot r in
  Alcotest.(check int) "counter zeroed" 0 (S.counter_value s' "sanids_a_total");
  Alcotest.(check int) "histogram zeroed" 0 (H.count (S.histogram s' "sanids_h_seconds"))

(* ------------------------------------------------------------------ *)
(* Snapshot *)

let test_snapshot_defaults_and_kinds () =
  let s = S.of_list [ ("a_total", S.Counter 1); ("a_total", S.Counter 2) ] in
  Alcotest.(check int) "duplicates merged" 3 (S.counter_value s "a_total");
  Alcotest.(check int) "absent counter is 0" 0 (S.counter_value s "nope");
  Alcotest.(check (float 0.0)) "absent gauge is 0" 0.0 (S.gauge_value s "nope");
  Alcotest.(check int) "absent histogram is empty" 0 (H.count (S.histogram s "nope"));
  let g = S.of_list [ ("a_total", S.Gauge 1.0) ] in
  match S.merge s g with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind conflict in merge must raise"

(* ------------------------------------------------------------------ *)
(* Prometheus exporter + lint *)

(* A strict-enough lint of the text exposition format: every line is a
   comment ("# HELP name text" / "# TYPE name counter|gauge|histogram")
   or a sample ("name[{le="..."}] value" with a finite or +Inf value).
   The cram test greps a scan's real export through the same shapes. *)
let lint_promtext text =
  let is_name s =
    s <> ""
    && String.for_all
         (fun ch ->
           (ch >= 'a' && ch <= 'z')
           || (ch >= 'A' && ch <= 'Z')
           || (ch >= '0' && ch <= '9')
           || ch = '_' || ch = ':')
         s
    && not (s.[0] >= '0' && s.[0] <= '9')
  in
  let check_line line =
    if line = "" then ()
    else if String.length line >= 2 && String.sub line 0 2 = "# " then (
      match String.split_on_char ' ' line with
      | "#" :: ("HELP" | "TYPE") :: name :: rest ->
          if not (is_name name) then failwith ("bad comment name: " ^ line);
          if rest = [] then failwith ("empty comment body: " ^ line)
      | _ -> failwith ("bad comment: " ^ line))
    else
      match String.index_opt line ' ' with
      | None -> failwith ("no value: " ^ line)
      | Some i ->
          let series = String.sub line 0 i in
          let value = String.sub line (i + 1) (String.length line - i - 1) in
          let name =
            match String.index_opt series '{' with
            | None -> series
            | Some j ->
                if line.[i - 1] <> '}' then failwith ("unclosed labels: " ^ line);
                String.sub series 0 j
          in
          if not (is_name name) then failwith ("bad metric name: " ^ line);
          if value <> "+Inf" && Float.is_nan (float_of_string value) then
            failwith ("NaN value: " ^ line)
  in
  List.iter check_line (String.split_on_char '\n' text)

let test_prometheus_export () =
  let r = R.create () in
  R.add (R.counter r ~help:"packets seen" "sanids_packets_total") 9;
  R.set_gauge (R.gauge r "sanids_cache_entries") 4.0;
  let h = R.histogram r "sanids_stage_match_seconds" in
  H.observe h 1e-6;
  H.observe h 1e-3;
  let text = Obs.Export.to_prometheus ~help:(R.help r) (R.snapshot r) in
  lint_promtext text;
  let has needle =
    let n = String.length needle and m = String.length text in
    let rec go i = i + n <= m && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "HELP line" true (has "# HELP sanids_packets_total packets seen");
  Alcotest.(check bool) "TYPE counter" true (has "# TYPE sanids_packets_total counter");
  Alcotest.(check bool) "counter sample" true (has "sanids_packets_total 9");
  Alcotest.(check bool) "gauge sample" true (has "sanids_cache_entries 4");
  Alcotest.(check bool) "histogram type" true
    (has "# TYPE sanids_stage_match_seconds histogram");
  Alcotest.(check bool) "+Inf bucket" true
    (has "sanids_stage_match_seconds_bucket{le=\"+Inf\"} 2");
  Alcotest.(check bool) "histogram count" true (has "sanids_stage_match_seconds_count 2");
  (* deterministic: same snapshot renders identically *)
  Alcotest.(check string) "deterministic"
    text
    (Obs.Export.to_prometheus ~help:(R.help r) (R.snapshot r))

let test_jsonl_export () =
  let r = R.create () in
  R.add (R.counter r "sanids_a_total") 2;
  H.observe (R.histogram r "sanids_h_seconds") 1e-3;
  let lines =
    String.split_on_char '\n' (String.trim (Obs.Export.to_jsonl (R.snapshot r)))
  in
  Alcotest.(check int) "one line per metric" 2 (List.length lines);
  List.iter
    (fun l ->
      Alcotest.(check bool) "object per line" true
        (String.length l > 2 && l.[0] = '{' && l.[String.length l - 1] = '}'))
    lines

(* ------------------------------------------------------------------ *)
(* Spans *)

let test_span_records_histogram () =
  let r = R.create () in
  let x = Obs.Span.with_ r "match" (fun () -> 41 + 1) in
  Alcotest.(check int) "result through" 42 x;
  Alcotest.(check string) "metric name" "sanids_stage_match_seconds"
    (Obs.Span.metric_of_stage "match");
  let s = R.snapshot r in
  Alcotest.(check int) "one observation" 1
    (H.count (S.histogram s "sanids_stage_match_seconds"))

let test_span_records_on_raise () =
  let r = R.create () in
  (match Obs.Span.with_ r "analyze" (fun () -> failwith "boom") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "exception must propagate");
  Alcotest.(check int) "duration recorded anyway" 1
    (H.count (S.histogram (R.snapshot r) (Obs.Span.metric_of_stage "analyze")))

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let test_span_tracing_and_sampling () =
  let path = Filename.temp_file "sanids_spans" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      let tracer = Obs.Span.tracer ~sample:2 oc in
      let r = R.create () in
      for _ = 1 to 5 do
        Obs.Span.with_ ~tracer r "match" (fun () -> ())
      done;
      Obs.Span.flush tracer;
      close_out oc;
      (* every 2nd of 5 spans: the 2nd and the 4th *)
      Alcotest.(check int) "emitted" 2 (Obs.Span.emitted tracer);
      let lines = read_lines path in
      Alcotest.(check int) "lines on disk" 2 (List.length lines);
      List.iteri
        (fun i line ->
          let prefix = "{\"span\":\"match\",\"ts\":" in
          Alcotest.(check bool)
            (Printf.sprintf "line %d shape" i)
            true
            (String.length line > String.length prefix
            && String.sub line 0 (String.length prefix) = prefix
            && line.[String.length line - 1] = '}');
          let seq = Printf.sprintf "\"seq\":%d}" i in
          let n = String.length seq and m = String.length line in
          Alcotest.(check bool)
            (Printf.sprintf "line %d seq" i)
            true
            (String.sub line (m - n) n = seq))
        lines);
  match Obs.Span.tracer ~sample:0 stdout with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "sample 0 must raise"

let () =
  Alcotest.run "obs"
    [
      ( "histogram",
        [
          Alcotest.test_case "basics" `Quick test_hist_basics;
          Alcotest.test_case "bucketing" `Quick test_hist_bucketing;
          Alcotest.test_case "quantile upper bound" `Quick test_hist_quantile_upper_bound;
          Alcotest.test_case "clamps garbage" `Quick test_hist_clamps_garbage;
          Alcotest.test_case "merge" `Quick test_hist_merge;
        ] );
      ( "registry",
        [
          Alcotest.test_case "counters" `Quick test_registry_counters;
          Alcotest.test_case "gauges" `Quick test_registry_gauges;
          Alcotest.test_case "validation" `Quick test_registry_validation;
          Alcotest.test_case "snapshot and reset" `Quick test_registry_snapshot_reset;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "defaults and kinds" `Quick test_snapshot_defaults_and_kinds;
        ] );
      ( "export",
        [
          Alcotest.test_case "prometheus" `Quick test_prometheus_export;
          Alcotest.test_case "jsonl" `Quick test_jsonl_export;
        ] );
      ( "span",
        [
          Alcotest.test_case "records histogram" `Quick test_span_records_histogram;
          Alcotest.test_case "records on raise" `Quick test_span_records_on_raise;
          Alcotest.test_case "tracing and sampling" `Quick test_span_tracing_and_sampling;
        ] );
    ]
