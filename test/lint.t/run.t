The shipped detector artifacts lint clean: the only findings are the
deliberate specific/generic template hierarchy, reported as info, so
even --strict passes (this is the @lint build gate):

  $ sanids lint --strict
  SL011 info  template:shell-spawn#1: every match is also matched by sibling template:shell-spawn#3 — the generic variant settles this name first anyway
  SL011 info  template:shell-spawn#2: every match is also matched by sibling template:shell-spawn#3 — the generic variant settles this name first anyway
  SL009 info  template:port-bind-shell: every match is also matched by the more general template:shell-spawn#3 (specific-before-generic hierarchy?)
  SL009 info  template:connect-back-shell: every match is also matched by the more general template:shell-spawn#3 (specific-before-generic hierarchy?)
  lint: 0 errors, 0 warnings, 4 infos

Without selection flags, templates, the shipped ruleset and the default
configuration are all linted:

  $ sanids lint
  SL011 info  template:shell-spawn#1: every match is also matched by sibling template:shell-spawn#3 — the generic variant settles this name first anyway
  SL011 info  template:shell-spawn#2: every match is also matched by sibling template:shell-spawn#3 — the generic variant settles this name first anyway
  SL009 info  template:port-bind-shell: every match is also matched by the more general template:shell-spawn#3 (specific-before-generic hierarchy?)
  SL009 info  template:connect-back-shell: every match is also matched by the more general template:shell-spawn#3 (specific-before-generic hierarchy?)
  lint: 0 errors, 0 warnings, 4 infos

JSON output is one stable JSON object per finding (JSONL):

  $ sanids lint --templates --format json
  {"code":"SL011","severity":"info","subject":"template:shell-spawn#1","message":"every match is also matched by sibling template:shell-spawn#3 — the generic variant settles this name first anyway"}
  {"code":"SL011","severity":"info","subject":"template:shell-spawn#2","message":"every match is also matched by sibling template:shell-spawn#3 — the generic variant settles this name first anyway"}
  {"code":"SL009","severity":"info","subject":"template:port-bind-shell","message":"every match is also matched by the more general template:shell-spawn#3 (specific-before-generic hierarchy?)"}
  {"code":"SL009","severity":"info","subject":"template:connect-back-shell","message":"every match is also matched by the more general template:shell-spawn#3 (specific-before-generic hierarchy?)"}

The embedded selftest corpus demonstrates every finding code and fails
the run with the data error exit:

  $ sanids lint --selftest
  SL001 error template:st-unbound-guard (guard 1): guard references constant variable "key", which no step binds — the guard always fails, so the template can never match
  SL002 error template:st-same-before-bind (step 1): constant variable "k" is matched with =k before any step binds it with ?k — this step can never match
  SL003 warn  template:st-read-before-load (step 1): register variable "acc" is transformed before any load binds it — the step matches any register
  SL004 warn  template:st-width-conflict (step 2): width conflict on value "v": 32-bit here vs 8-bit at step 1
  SL005 warn  template:st-unreachable (step 2): unreachable: the exit syscall at step 1 never returns, so the remaining 1 step(s) can never execute
  SL006 error template:st-unsat-guards: guards are unsatisfiable: no value of "k" can satisfy their conjunction — the template can never match
  SL007 info  template:st-vacuous-guard (guard 2): guard is implied by the guards before it and can never change a verdict
  SL005 warn  template:st-abs-unreachable (step 2): unreachable: the exit syscall at step 1 never returns, so the remaining 1 step(s) can never execute
  SL008 warn  template:st-dup-a: equivalent to template:st-dup-b: each subsumes the other, so one of the two templates is redundant
  SL009 info  template:st-specific: every match is also matched by the more general template:st-dup-a (specific-before-generic hierarchy?)
  SL009 info  template:st-specific: every match is also matched by the more general template:st-dup-b (specific-before-generic hierarchy?)
  SL010 warn  template:st-twin#2: exact duplicate of template:st-twin#1
  SL011 info  template:st-variant#1: every match is also matched by sibling template:st-variant#2 — the generic variant settles this name first anyway
  SL401 warn  template:st-unreachable (step 2): step is unreachable under the abstract semantics of the template's canonical realization — no abstract path past the preceding steps reaches it
  SL401 warn  template:st-abs-unreachable (step 2): step is unreachable under the abstract semantics of the template's canonical realization — no abstract path past the preceding steps reaches it
  SL402 error template:st-width-guard: guards on "nr" can never hold: the variable is bound at an 8-bit site, so only values in [0, 255] ever reach the guard
  SL403 warn  template:st-hollow-loop: decrypt loop can never write a byte it later executes: the realization's abstract may-write region misses the whole image (the loop body stores nothing, or stores only outside the region)
  SL100 error rule:2: parse error: missing option block
  SL102 warn  rule:3 (content 1): unanchored single-byte pattern "A" matches a constant fraction of all traffic
  SL103 warn  rule:4 (content 2): duplicate content constraint within the rule
  SL104 warn  rule:6: duplicate of rule:5: same header and contents
  SL105 warn  rule:8: shadowed by rule:7, which fires on every packet this rule fires on
  lint: 5 errors, 13 warnings, 4 infos
  [65]

A substring-shadowed rule is caught, and --strict turns the warning
into a failure:

  $ printf '%s\n' \
  >   'alert tcp any any -> any any (msg:"generic sh"; content:"sh";)' \
  >   'alert tcp any any -> any 80 (msg:"binsh"; content:"/bin/sh";)' \
  >   > shadow.rules
  $ sanids lint --rules shadow.rules
  SL105 warn  rule:2: shadowed by rule:1, which fires on every packet this rule fires on
  lint: 0 errors, 1 warnings, 0 infos
  $ sanids lint --rules shadow.rules --strict > /dev/null
  [65]

Configuration lint promotes Config.validate into findings — degrade
with nothing that could trigger it is an error:

  $ sanids lint --config --degrade
  SL204 error config: degrade requires an analysis budget or a breaker (nothing can trigger degradation otherwise)
  lint: 1 errors, 0 warnings, 0 infos
  [65]

A budget or breaker without degrade only warns:

  $ sanids lint --config --budget default
  SL206 warn  config: an analysis budget or breaker is set without degrade: truncated packets are silently under-analyzed instead of falling back to the baseline pass
  lint: 0 errors, 1 warnings, 0 infos

Junk diagnostics for an extracted region, via the def-use dead-write
analysis:

  $ sanids gen-exploit --shellcode classic --polymorphic -o poly.bin --seed 7
  wrote poly.bin (154 bytes)
  $ sanids lint --trace poly.bin
  SL302 info  trace:poly.bin: junk density: 8 of 82 traced instructions are dead writes (10%)
  SL404 info  trace:poly.bin: abstractly reachable self-modifying store: some execution path may overwrite bytes of this region — the decoder shape (confirm dynamically before trusting the disassembly)
  lint: 0 errors, 0 warnings, 2 infos

Malformed specs are usage errors (64) with typed messages, one per
spec-parser flag:

  $ sanids lint --config --budget bytes=never 2>err; echo $?
  64
  $ grep -qo 'budget: bytes wants a positive integer' err && echo typed
  typed
  $ sanids lint --config --breaker fails=x 2>err; echo $?
  64
  $ grep -qo 'breaker: fails wants an integer' err && echo typed
  typed
  $ sanids lint --config --drop-policy sometimes 2>err; echo $?
  64
  $ grep -qo 'drop policy: unknown "sometimes"' err && echo typed
  typed
  $ sanids scan --fault meteor=0.5 poly.bin 2>err; echo $?
  64
  $ grep -qo 'fault: unknown kind "meteor"' err && echo typed
  typed

SARIF output is a single minimal 2.1.0 document (rule ids from the
distinct finding codes, one result per finding):

  $ sanids lint --templates --format sarif | tr ',' '\n' | grep -c ruleId
  4
  $ sanids lint --templates --format sarif | grep -o '"version":"2.1.0"'
  "version":"2.1.0"
  $ sanids lint --templates --format sarif | grep -o '"$schema":"https://json.schemastore.org/sarif-2.1.0.json"'
  "$schema":"https://json.schemastore.org/sarif-2.1.0.json"
  $ sanids lint --templates --format sarif | grep -o '{"id":"SL009"}'
  {"id":"SL009"}
  $ sanids lint --selftest --format sarif | grep -o '"level":"error"' | head -1
  "level":"error"

The finding-code catalog is machine-readable, duplicate-free, and every
code the selftest emits appears in it (the SL000 meta-check is part of
--selftest; a clean run shows no SL000 findings):

  $ sanids lint --codes | head -3
  SL001 template
  SL002 template
  SL003 template
  $ sanids lint --codes | awk '{print $1}' | sort | uniq -d
  $ sanids lint --selftest | grep -c SL000
  0
  [1]
