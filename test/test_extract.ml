(* Tests for HTTP parsing, unicode decoding, repetition and the binary
   frame extractor (paper §4.2). *)

open Sanids_extract

let test_http_parse_get () =
  let payload = "GET /index.html HTTP/1.1\r\nHost: www\r\nAccept: */*\r\n\r\n" in
  match Http.parse_request payload with
  | Ok r ->
      Alcotest.(check string) "method" "GET" r.Http.meth;
      Alcotest.(check string) "target" "/index.html" r.Http.target;
      Alcotest.(check string) "version" "HTTP/1.1" r.Http.version;
      Alcotest.(check (option string)) "host header" (Some "www")
        (List.assoc_opt "Host" r.Http.headers);
      Alcotest.(check string) "empty body" "" r.Http.body
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_http_parse_post_body () =
  let payload = "POST /x HTTP/1.0\r\nContent-Length: 3\r\n\r\nabc" in
  match Http.parse_request payload with
  | Ok r -> Alcotest.(check string) "body" "abc" r.Http.body
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_http_reject_non_http () =
  Alcotest.(check bool) "smtp is not http" false (Http.is_request "EHLO mail\r\n");
  match Http.parse_request "garbage" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage must not parse"

let test_http_target_offset () =
  match Http.parse_request "GET /abc HTTP/1.0\r\n\r\n" with
  | Ok r -> Alcotest.(check int) "target offset" 4 r.Http.target_off
  | Error e -> Alcotest.failf "parse failed: %s" e

(* ------------------------------------------------------------------ *)

let test_unicode_single_escape () =
  match Unicode.decode_u_escape (Slice.of_string "%u9090") 0 with
  | Some (v, next) ->
      Alcotest.(check int) "value" 0x9090 v;
      Alcotest.(check int) "next" 6 next
  | None -> Alcotest.fail "must decode"

let test_unicode_run_decoding () =
  (* the Code Red II idiom: little-endian pairs *)
  let s = Slice.of_string "AAAA%u6858%ucbd3%u7801%u9090BBBB" in
  match Unicode.unicode_runs ~min_run:4 s with
  | [ r ] ->
      Alcotest.(check int) "offset" 4 r.Unicode.off;
      Alcotest.(check int) "count" 4 r.Unicode.count;
      Alcotest.(check string) "bytes" "\x58\x68\xd3\xcb\x01\x78\x90\x90" r.Unicode.decoded
  | other -> Alcotest.failf "expected one run, got %d" (List.length other)

let test_unicode_short_run_ignored () =
  Alcotest.(check int) "below min_run" 0
    (List.length (Unicode.unicode_runs ~min_run:4 (Slice.of_string "x%u1234%u5678x")))

let test_unicode_malformed () =
  Alcotest.(check int) "bad digits" 0
    (List.length (Unicode.unicode_runs (Slice.of_string "%uZZZZ%u12")))

let test_percent_decode () =
  Alcotest.(check string) "basic" "a b/c" (Unicode.percent_decode "a+b%2Fc");
  Alcotest.(check string) "passthrough" "100%" (Unicode.percent_decode "100%")

(* ------------------------------------------------------------------ *)

let test_repetition_runs () =
  let s = Slice.of_string ("ab" ^ String.make 40 'X' ^ "cd" ^ String.make 10 'Y') in
  match Repetition.runs ~min_len:32 s with
  | [ r ] ->
      Alcotest.(check int) "offset" 2 r.Repetition.off;
      Alcotest.(check char) "byte" 'X' r.Repetition.byte;
      Alcotest.(check int) "len" 40 r.Repetition.len
  | other -> Alcotest.failf "expected one run, got %d" (List.length other)

let test_repetition_longest () =
  match Repetition.longest (Slice.of_string "aaabbbbcc") with
  | Some r ->
      Alcotest.(check char) "byte" 'b' r.Repetition.byte;
      Alcotest.(check int) "len" 4 r.Repetition.len
  | None -> Alcotest.fail "expected a run"

let test_sled_like_polymorphic () =
  (* a polymorphic sled has differing bytes, all NOP-like *)
  let rng = Sanids_util.Rng.create 7L in
  let sled = Sanids_polymorph.Nops.sled_bytes rng 64 in
  match Repetition.sled_like ~min_len:32 (Slice.of_string ("text" ^ sled ^ "text")) with
  | [ r ] -> Alcotest.(check int) "length" 64 r.Repetition.len
  | other -> Alcotest.failf "expected one sled, got %d" (List.length other)

let test_ret_address_runs () =
  (* an exploit's return-address region: one address, LSB jittered *)
  let rng = Sanids_util.Rng.create 12L in
  let region =
    Sanids_exploits.Exploit_gen.raw_overflow rng
      ~shellcode:(Sanids_exploits.Shellcodes.find "classic").Sanids_exploits.Shellcodes.code
  in
  (match Repetition.ret_address_runs (Slice.of_string region) with
  | r :: _ ->
      Alcotest.(check int32) "base is the jittered address" 0xBFFFF200l
        (Int32.logand r.Repetition.base 0xFFFFFF00l);
      Alcotest.(check bool) "full region found" true (r.Repetition.count >= 8)
  | [] -> Alcotest.fail "expected a return-address run");
  (* uniform text must not look like a return region *)
  Alcotest.(check int) "text run rejected" 0
    (List.length (Repetition.ret_address_runs (Slice.of_string (String.make 64 'a'))));
  (* and below the count threshold nothing fires *)
  let w = Sanids_util.Byte_io.Writer.create () in
  for _ = 1 to 3 do
    Sanids_util.Byte_io.Writer.u32_le w 0xBFFFF210l
  done;
  Alcotest.(check int) "short run rejected" 0
    (List.length
       (Repetition.ret_address_runs
          (Slice.of_string (Sanids_util.Byte_io.Writer.contents w))))

(* ------------------------------------------------------------------ *)

let benign_get = "GET /a/b.html HTTP/1.1\r\nHost: x\r\nUser-Agent: test\r\n\r\n"

let test_extract_benign_empty () =
  let s = Slice.of_string benign_get in
  Alcotest.(check int) "no frames" 0 (List.length (Extractor.extract s));
  Alcotest.(check bool) "not suspicious" false (Extractor.suspicious s)

let test_extract_code_red () =
  let req = Slice.of_string (Sanids_exploits.Code_red.request ()) in
  Alcotest.(check bool) "suspicious" true (Extractor.suspicious req);
  let frames = Extractor.extract req in
  let unicode =
    List.filter (fun f -> f.Extractor.origin = Extractor.Unicode_escape) frames
  in
  Alcotest.(check bool) "has unicode frame" true (unicode <> []);
  (* the decoded frame contains the push of the IIS constant *)
  let has_const =
    List.exists
      (fun f ->
        let ds = Sanids_x86.Decode.all (Slice.to_string f.Extractor.data) in
        Array.exists
          (fun (d : Sanids_x86.Decode.decoded) ->
            match d.Sanids_x86.Decode.insn with
            | Sanids_x86.Insn.Push_imm 0x7801cbd3l -> true
            | _ -> false)
          ds)
      unicode
  in
  Alcotest.(check bool) "decoded push const" true has_const

let test_extract_raw_binary_with_context () =
  let payload = benign_get ^ String.make 100 'A' ^ Sanids_util.Rng.bytes (Sanids_util.Rng.create 9L) 80 in
  let frames = Extractor.extract (Slice.of_string payload) in
  match frames with
  | [ f ] ->
      Alcotest.(check bool) "origin raw" true (f.Extractor.origin = Extractor.Raw_binary);
      (* context must reach back into the printable filler *)
      Alcotest.(check bool) "context included" true
        (f.Extractor.off < String.length benign_get + 100)
  | other -> Alcotest.failf "expected one frame, got %d" (List.length other)

let test_extract_gap_merge () =
  (* two binary chunks separated by a few text bytes merge into one frame *)
  let rng = Sanids_util.Rng.create 11L in
  let bin n = String.concat "" (List.init n (fun _ -> "\x01\xfe")) in
  ignore rng;
  let payload = "head" ^ bin 20 ^ "gap-text" ^ bin 20 ^ "tail" in
  Alcotest.(check int) "merged" 1
    (List.length (Extractor.extract (Slice.of_string payload)))

let test_extract_max_frames () =
  let cfg = { Extractor.default_config with Extractor.max_frames = 2; gap_merge = 0; context_before = 0; context_after = 0 } in
  let chunk = String.make 30 '\x01' in
  let payload =
    String.concat (String.make 64 'a') [ chunk; chunk; chunk; chunk ]
  in
  Alcotest.(check int) "capped" 2
    (List.length (Extractor.extract ~config:cfg (Slice.of_string payload)))

let prop_extract_never_raises =
  QCheck2.Test.make ~name:"extractor total on arbitrary bytes" ~count:500
    QCheck2.Gen.(string_size (int_bound 2000))
    (fun s ->
      let frames = Extractor.extract (Slice.of_string s) in
      List.for_all
        (fun f ->
          f.Extractor.off >= 0
          && f.Extractor.off <= String.length s
          && Slice.length f.Extractor.data > 0)
        frames
      || frames = [])

let prop_suspicious_monotone_unicode =
  QCheck2.Test.make ~name:"appending a unicode run makes payload suspicious" ~count:100
    QCheck2.Gen.(string_size ~gen:(map Char.chr (int_range 0x61 0x7a)) (int_bound 200))
    (fun s ->
      Extractor.suspicious (Slice.of_string (s ^ "%u9090%u9090%u9090%u9090%u9090")))

let properties =
  List.map QCheck_alcotest.to_alcotest
    [ prop_extract_never_raises; prop_suspicious_monotone_unicode ]

let () =
  Alcotest.run "extract"
    [
      ( "http",
        [
          Alcotest.test_case "parse get" `Quick test_http_parse_get;
          Alcotest.test_case "parse post body" `Quick test_http_parse_post_body;
          Alcotest.test_case "reject non-http" `Quick test_http_reject_non_http;
          Alcotest.test_case "target offset" `Quick test_http_target_offset;
        ] );
      ( "unicode",
        [
          Alcotest.test_case "single escape" `Quick test_unicode_single_escape;
          Alcotest.test_case "run decoding" `Quick test_unicode_run_decoding;
          Alcotest.test_case "short run ignored" `Quick test_unicode_short_run_ignored;
          Alcotest.test_case "malformed" `Quick test_unicode_malformed;
          Alcotest.test_case "percent decode" `Quick test_percent_decode;
        ] );
      ( "repetition",
        [
          Alcotest.test_case "runs" `Quick test_repetition_runs;
          Alcotest.test_case "longest" `Quick test_repetition_longest;
          Alcotest.test_case "polymorphic sled" `Quick test_sled_like_polymorphic;
          Alcotest.test_case "return-address region" `Quick test_ret_address_runs;
        ] );
      ( "extractor",
        [
          Alcotest.test_case "benign empty" `Quick test_extract_benign_empty;
          Alcotest.test_case "code red frames" `Quick test_extract_code_red;
          Alcotest.test_case "raw with context" `Quick test_extract_raw_binary_with_context;
          Alcotest.test_case "gap merge" `Quick test_extract_gap_merge;
          Alcotest.test_case "max frames" `Quick test_extract_max_frames;
        ] );
      ("properties", properties);
    ]
