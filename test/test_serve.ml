(* The serving-path contract: the lifecycle state machine's full
   transition table (including reload-rejected atomicity and
   drain-during-reload), the reload gate, the configuration spec
   grammar shared with the CLI, the no-negative-rates law of
   Snapshot.diff, and an Httpd round trip. *)

module Obs = Sanids_obs
module Lifecycle = Sanids_serve.Lifecycle
module Httpd = Sanids_serve.Httpd
module Serve = Sanids_serve.Serve
module Config = Sanids_nids.Config

open Lifecycle

(* ------------------------------------------------------------------ *)
(* Lifecycle: the entire transition table, exhaustively.

   [expected] re-states the protocol independently of the
   implementation; the test folds every (state, event) pair through
   [step] and compares.  Adding a state or event without extending the
   protocol here fails the build (non-exhaustive match is an error). *)

let states = [ Starting; Running 1; Running 7; Reloading 1; Reloading 7; Draining 2; Stopped 2 ]
let events =
  [ Ready; Reload_request; Reload_applied; Reload_rejected; Drain_request; Drained ]

let expected state event =
  match (state, event) with
  | Starting, Ready -> Some (Running 1)
  | Running g, Reload_request -> Some (Reloading g)
  | Reloading g, Reload_applied -> Some (Running (g + 1))
  (* atomic rejection: generation unchanged *)
  | Reloading g, Reload_rejected -> Some (Running g)
  (* drain wins from Running AND mid-reload *)
  | Running g, Drain_request | Reloading g, Drain_request -> Some (Draining g)
  (* repeated SIGTERM is idempotent *)
  | Draining g, Drain_request -> Some (Draining g)
  | Draining g, Drained -> Some (Stopped g)
  | ( (Starting | Running _ | Reloading _ | Draining _ | Stopped _),
      (Ready | Reload_request | Reload_applied | Reload_rejected
      | Drain_request | Drained ) ) ->
      None

let test_transition_table () =
  List.iter
    (fun state ->
      List.iter
        (fun event ->
          let label =
            Printf.sprintf "%s + %s" (state_to_string state)
              (event_to_string event)
          in
          match (step state event, expected state event) with
          | Ok got, Some want ->
              Alcotest.(check string) label (state_to_string want)
                (state_to_string got)
          | Error _, None -> ()
          | Ok got, None ->
              Alcotest.failf "%s: expected rejection, got %s" label
                (state_to_string got)
          | Error m, Some want ->
              Alcotest.failf "%s: expected %s, got error %s" label
                (state_to_string want) m)
        events)
    states

let test_full_lifecycle_walk () =
  (* start → reject → apply → drain-during-reload → stopped, tracking
     the generation the whole way *)
  let s = initial in
  Alcotest.(check int) "gen 0 at start" 0 (generation s);
  let s = Result.get_ok (step s Ready) in
  Alcotest.(check bool) "serving" true (can_serve s);
  let s = Result.get_ok (step s Reload_request) in
  let s = Result.get_ok (step s Reload_rejected) in
  Alcotest.(check int) "rejection keeps gen" 1 (generation s);
  let s = Result.get_ok (step s Reload_request) in
  Alcotest.(check bool) "reloading still serves" true (can_serve s);
  let s = Result.get_ok (step s Reload_applied) in
  Alcotest.(check int) "applied bumps gen" 2 (generation s);
  let s = Result.get_ok (step s Reload_request) in
  let s = Result.get_ok (step s Drain_request) in
  Alcotest.(check bool) "draining does not serve" false (can_serve s);
  let s = Result.get_ok (step s Drain_request) in
  let s = Result.get_ok (step s Drained) in
  Alcotest.(check bool) "stopped" true (is_stopped s);
  Alcotest.(check int) "gen survives to stop" 2 (generation s)

(* ------------------------------------------------------------------ *)
(* Config spec grammar — the same parser the CLI's --set and the
   daemon's reload path use. *)

let apply spec = Result.map (fun f -> f Config.default) (Config.of_spec spec)

let test_spec_basics () =
  (match apply "scan_threshold=9" with
  | Ok cfg -> Alcotest.(check int) "scan_threshold" 9 cfg.Config.scan_threshold
  | Error m -> Alcotest.fail m);
  (match apply "classify=off" with
  | Ok cfg ->
      Alcotest.(check bool) "classify off" false cfg.Config.classification_enabled
  | Error m -> Alcotest.fail m);
  (match apply "drop_policy=drop_oldest" with
  | Ok cfg ->
      Alcotest.(check bool) "drop policy" true
        (cfg.Config.stream_drop_policy = Sanids_util.Bqueue.Drop_oldest)
  | Error m -> Alcotest.fail m);
  (* nested comma-spec passes through the first-'=' split unescaped *)
  (match apply "budget=bytes=65536,insns=100,steps=1000,deadline=0.5" with
  | Ok cfg ->
      Alcotest.(check bool) "budget set" true (cfg.Config.analysis_budget <> None)
  | Error m -> Alcotest.fail m)

let test_spec_errors () =
  let is_error = function Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "unknown key" true (is_error (apply "bogus=1"));
  Alcotest.(check bool) "missing =" true (is_error (apply "scan_threshold"));
  Alcotest.(check bool) "bad int" true (is_error (apply "scan_threshold=ten"));
  Alcotest.(check bool) "bad bool" true (is_error (apply "classify=maybe"));
  Alcotest.(check bool) "bad nested spec" true (is_error (apply "budget=bytes=x"))

let test_spec_lines () =
  match Config.of_lines [ "# comment"; ""; "scan_threshold=5"; "  classify=no  " ] with
  | Ok f ->
      let cfg = f Config.default in
      Alcotest.(check int) "threshold" 5 cfg.Config.scan_threshold;
      Alcotest.(check bool) "classify" false cfg.Config.classification_enabled
  | Error m -> Alcotest.fail m

let test_spec_lines_error_position () =
  match Config.of_lines [ "scan_threshold=5"; "junk" ] with
  | Ok _ -> Alcotest.fail "expected error"
  | Error m ->
      Alcotest.(check bool)
        (Printf.sprintf "line prefix in %S" m)
        true
        (String.length m >= 7 && String.sub m 0 7 = "line 2:")

(* ------------------------------------------------------------------ *)
(* The reload gate, without a daemon. *)

let temp_conf contents =
  let path = Filename.temp_file "sanids_serve_test" ".conf" in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  path

let test_gate_accepts_clean () =
  let path = temp_conf "scan_threshold=4\nverdict_cache=1024\n" in
  (match
     Serve.reload_candidate ~base:Config.default ~config_file:(Some path)
       ~rules_file:None
   with
  | Ok cfg -> Alcotest.(check int) "applied" 4 cfg.Config.scan_threshold
  | Error m -> Alcotest.fail m);
  Sys.remove path

let test_gate_rejects_dirty () =
  let path = temp_conf "scan_threshold=0\n" in
  (match
     Serve.reload_candidate ~base:Config.default ~config_file:(Some path)
       ~rules_file:None
   with
  | Ok _ -> Alcotest.fail "expected rejection"
  | Error m ->
      (* the reason carries the lint code so operators can look it up *)
      let has_code =
        let rec find i =
          i + 5 <= String.length m
          && (String.sub m i 5 = "SL201" || find (i + 1))
        in
        find 0
      in
      Alcotest.(check bool) (Printf.sprintf "SL201 in %S" m) true has_code);
  Sys.remove path

let test_gate_rejects_unparsable () =
  let path = temp_conf "what even is this\n" in
  (match
     Serve.reload_candidate ~base:Config.default ~config_file:(Some path)
       ~rules_file:None
   with
  | Ok _ -> Alcotest.fail "expected rejection"
  | Error _ -> ());
  Sys.remove path

let test_gate_no_file_is_base () =
  match
    Serve.reload_candidate ~base:Config.default ~config_file:None
      ~rules_file:None
  with
  | Ok cfg ->
      Alcotest.(check int) "base passes" Config.default.Config.scan_threshold
        cfg.Config.scan_threshold
  | Error m -> Alcotest.fail m

(* ------------------------------------------------------------------ *)
(* Snapshot.diff: never a negative rate.  Counters and histogram
   buckets in [diff ~newer ~older] must be >= 0 even when the "newer"
   snapshot regresses (worker respawn, generation swap). *)

let hist_snap obs =
  let h = Obs.Histogram.create () in
  List.iter (fun n -> Obs.Histogram.observe h (float_of_int n)) obs;
  Obs.Histogram.snap h

let snapshot_gen =
  let open QCheck2.Gen in
  let entry =
    oneof
      [
        map2
          (fun i n -> (Printf.sprintf "c%d_total" (i mod 3), Obs.Snapshot.Counter (n mod 500)))
          small_nat small_nat;
        map2
          (fun i n ->
            (Printf.sprintf "g%d" (i mod 3), Obs.Snapshot.Gauge (float_of_int (n mod 500))))
          small_nat small_nat;
        map2
          (fun i obs -> (Printf.sprintf "h%d_seconds" (i mod 2), Obs.Snapshot.Hist (hist_snap obs)))
          small_nat
          (list_size (int_range 0 6) (int_range 0 30));
      ]
  in
  map Obs.Snapshot.of_list (list_size (int_range 0 10) entry)

let non_negative snap =
  List.for_all
    (fun (_, v) ->
      match v with
      | Obs.Snapshot.Counter c -> c >= 0
      | Obs.Snapshot.Gauge _ -> true
      | Obs.Snapshot.Hist h ->
          Obs.Histogram.count h >= 0
          && Array.for_all (fun c -> c >= 0) h.Obs.Histogram.counts)
    (Obs.Snapshot.to_list snap)

let prop_diff_never_negative =
  QCheck2.Test.make ~name:"Snapshot.diff never yields negative rates" ~count:500
    QCheck2.Gen.(pair snapshot_gen snapshot_gen)
    (fun (newer, older) ->
      non_negative (Obs.Snapshot.diff ~newer ~older))

let prop_diff_of_merge_recovers =
  (* the intended use: older is a prefix of newer's history, so the
     diff recovers exactly the increment *)
  QCheck2.Test.make ~name:"Snapshot.diff inverts merge on counters" ~count:500
    QCheck2.Gen.(pair snapshot_gen snapshot_gen)
    (fun (older, increment) ->
      let newer = Obs.Snapshot.merge older increment in
      let d = Obs.Snapshot.diff ~newer ~older in
      List.for_all
        (fun (name, v) ->
          match v with
          | Obs.Snapshot.Counter c ->
              Obs.Snapshot.counter_value d name = c
          | _ -> true)
        (Obs.Snapshot.to_list increment))

let diff_properties =
  List.map QCheck_alcotest.to_alcotest
    [ prop_diff_never_negative; prop_diff_of_merge_recovers ]

(* ------------------------------------------------------------------ *)
(* Httpd round trip over a Unix socket. *)

let test_httpd_roundtrip () =
  let path = Filename.temp_file "sanids_httpd_test" ".sock" in
  Sys.remove path;
  let handler req =
    match req.Httpd.path with
    | "/ping" -> Httpd.ok ~content_type:"text/plain" "pong\n"
    | _ -> Httpd.error 404 "nope\n"
  in
  match Httpd.start (Httpd.Unix_socket path) handler with
  | Error m -> Alcotest.fail m
  | Ok server ->
      let listen = Httpd.Unix_socket path in
      (match Httpd.request ~timeout:5.0 listen ~verb:"GET" ~path:"/ping" () with
      | Ok (status, body) ->
          Alcotest.(check int) "status" 200 status;
          Alcotest.(check string) "body" "pong\n" body
      | Error m -> Alcotest.fail m);
      (match Httpd.request ~timeout:5.0 listen ~verb:"GET" ~path:"/missing" () with
      | Ok (status, _) -> Alcotest.(check int) "404" 404 status
      | Error m -> Alcotest.fail m);
      Httpd.stop server;
      (try Sys.remove path with Sys_error _ -> ())

(* The slowloris contract: a client that connects and never sends a
   byte must be cut off by the per-connection deadline instead of
   wedging the single-connection accept loop — the well-behaved client
   queued behind it still gets served. *)
let test_httpd_slowloris () =
  let path = Filename.temp_file "sanids_httpd_slow" ".sock" in
  Sys.remove path;
  let handler _req = Httpd.ok ~content_type:"text/plain" "pong\n" in
  match Httpd.start ~deadline:0.3 (Httpd.Unix_socket path) handler with
  | Error m -> Alcotest.fail m
  | Ok server ->
      let slow = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect slow (Unix.ADDR_UNIX path);
      (* the stalled connection is accepted first and sends nothing *)
      Unix.sleepf 0.05;
      (match
         Httpd.request ~timeout:5.0 (Httpd.Unix_socket path) ~verb:"GET"
           ~path:"/ping" ()
       with
      | Ok (status, body) ->
          Alcotest.(check int) "served past the slowloris" 200 status;
          Alcotest.(check string) "body" "pong\n" body
      | Error m -> Alcotest.fail m);
      (* the stalled connection itself got a 408 (or a bare close) *)
      let buf = Bytes.create 1024 in
      Unix.setsockopt_float slow Unix.SO_RCVTIMEO 5.0;
      let n = try Unix.read slow buf 0 1024 with Unix.Unix_error _ -> 0 in
      let text = Bytes.sub_string buf 0 n in
      Alcotest.(check bool)
        (Printf.sprintf "timed out with 408, got %S" text)
        true
        (n = 0 || (String.length text >= 12 && String.sub text 9 3 = "408"));
      Unix.close slow;
      Httpd.stop server;
      (try Sys.remove path with Sys_error _ -> ())

let () =
  Alcotest.run "serve"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "transition table" `Quick test_transition_table;
          Alcotest.test_case "full walk" `Quick test_full_lifecycle_walk;
        ] );
      ( "config spec",
        [
          Alcotest.test_case "basics" `Quick test_spec_basics;
          Alcotest.test_case "errors" `Quick test_spec_errors;
          Alcotest.test_case "lines" `Quick test_spec_lines;
          Alcotest.test_case "line position" `Quick test_spec_lines_error_position;
        ] );
      ( "reload gate",
        [
          Alcotest.test_case "accepts clean" `Quick test_gate_accepts_clean;
          Alcotest.test_case "rejects dirty" `Quick test_gate_rejects_dirty;
          Alcotest.test_case "rejects unparsable" `Quick test_gate_rejects_unparsable;
          Alcotest.test_case "no file serves base" `Quick test_gate_no_file_is_base;
        ] );
      ("snapshot diff", diff_properties);
      ( "httpd",
        [
          Alcotest.test_case "roundtrip" `Quick test_httpd_roundtrip;
          Alcotest.test_case "slowloris deadline" `Quick test_httpd_slowloris;
        ] );
    ]
